// member_table.hpp - SWIM member states and incarnation arbitration.
//
// The table holds, per node, the three-state SWIM lifecycle plus the
// node's incarnation number, and implements the precedence rules that let
// every agent apply the same set of claims in any order and converge:
//
//   alive(n, i)    overrides  alive(n, j<i), suspect(n, j<i), failed(n, j<i)
//   suspect(n, i)  overrides  alive(n, j<=i), suspect(n, j<i)
//   failed(n, i)   overrides  alive(n, j<=i), suspect(n, j<=i)
//
// The asymmetric tie-break — suspect beats alive at EQUAL incarnation,
// alive needs a STRICTLY higher one — is what makes refutation meaningful:
// only the suspected node itself can clear a suspicion, by incrementing
// its own incarnation (nobody else ever mints incarnations for it).
//
// A confirmation is indisputable only for the incarnation it names: once a
// refutation or rejoin has raised the node's incarnation past a failed
// claim's, that claim is stale history, not evidence.  Classic crash-stop
// SWIM lets failed override everything; with rejoin support that rule lets
// confirm rumors still sitting in piggyback retransmit queues re-kill a
// reinstated node over and over until the rejoin budget marks it terminal.
//
// A failed node may return (gray failures: SLURM drain + un-drain) via an
// alive claim with a higher incarnation; each return is counted and after
// `max_rejoins` the node is terminal — a flapping node is worse than a
// dead one, every reinstatement moves ring ownership back and forth.
//
// Pure policy: no locks, no clocks except the suspicion deadlines the
// caller stamps in.  MembershipAgent serializes access under its mutex.
#pragma once

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace ftc::membership {

using NodeId = ftc::NodeId;

enum class MemberState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,  ///< Rumored dead; still serving until confirmed.
  kFailed = 2,   ///< Confirmed failed; out of the serving set.
};

const char* member_state_name(MemberState state);

/// What applying a claim actually did — the caller maps these onto ring
/// events (only kJoined / kConfirmed / kReinstated change the ring).
enum class Applied : std::uint8_t {
  kNone = 0,     ///< Claim stale or redundant; nothing changed.
  kJoined,       ///< Unknown node entered the table in a serving state.
  kRefreshed,    ///< Incarnation advanced; serving state unchanged.
  kRefuted,      ///< suspect -> alive (the node cleared its own name).
  kSuspected,    ///< alive -> suspect (start the suspicion timer).
  kConfirmed,    ///< any -> failed (remove from the ring).
  kReinstated,   ///< failed -> alive (re-add to the ring).
};

class MemberTable {
 public:
  using Clock = std::chrono::steady_clock;

  struct MemberInfo {
    MemberState state = MemberState::kAlive;
    std::uint64_t incarnation = 0;
    Clock::time_point suspect_deadline{};  ///< Meaningful while kSuspect.
    std::uint32_t rejoins = 0;  ///< failed -> alive returns to date.
    bool terminal = false;      ///< Flapped out; alive claims ignored.
  };

  explicit MemberTable(std::uint32_t max_rejoins = 3);

  /// Seeds a member as alive at incarnation 0 (initial membership; no
  /// event semantics).  Re-seeding an existing member is a no-op.
  void seed(NodeId node);

  /// Applies one claim under the SWIM precedence rules.  `was_known`
  /// (optional) reports whether the node was in the table beforehand —
  /// a suspect/failed claim about an unknown node still introduces it.
  Applied apply(MemberState claimed, NodeId node, std::uint64_t incarnation,
                bool* was_known = nullptr);

  /// Stamps the suspicion deadline for a kSuspect member (the agent
  /// computes it from its own probe period; each agent times suspicions
  /// from when IT learned, as SWIM prescribes).
  void set_suspect_deadline(NodeId node, Clock::time_point deadline);

  /// Suspects whose deadline has passed, ascending NodeId.
  [[nodiscard]] std::vector<NodeId> expired_suspects(
      Clock::time_point now) const;

  [[nodiscard]] bool contains(NodeId node) const;
  /// kFailed for unknown nodes (an unknown node is not serving).
  [[nodiscard]] MemberState state(NodeId node) const;
  [[nodiscard]] std::uint64_t incarnation(NodeId node) const;
  [[nodiscard]] bool is_terminal(NodeId node) const;
  [[nodiscard]] std::uint32_t rejoins(NodeId node) const;

  /// Members in serving states (kAlive or kSuspect), ascending NodeId.
  [[nodiscard]] std::vector<NodeId> serving_members() const;
  /// All known members, ascending NodeId.
  [[nodiscard]] std::vector<NodeId> members() const;

  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] std::size_t suspect_count() const;
  [[nodiscard]] std::size_t failed_count() const;

 private:
  std::uint32_t max_rejoins_;
  std::unordered_map<NodeId, MemberInfo> members_;
};

}  // namespace ftc::membership
