// swim.hpp - SWIM-style membership agent with epoch-versioned ring views.
//
// The seed detects failures purely client-locally: each client counts its
// own timeouts and performs private ring surgery, so N clients pay N
// detection latencies per dead node (N x TIMEOUT_LIMIT wasted requests)
// and their rings drift apart silently.  The MembershipAgent replaces
// that with the SWIM discipline [Das et al., DSN'02], adapted to ride on
// the cache's existing RPC plane:
//
//   probe      One random-round-robin member is pinged (kSwimPing) every
//              probe period.  An ack proves liveness.
//   indirect   On probe timeout, k proxies are asked to ping the target
//              on our behalf (kSwimPingReq) — this separates "the target
//              is dead" from "my path to the target is bad", which is
//              exactly the confusion gray failures exploit.  The proxy
//              ACCEPTS the errand immediately and pings asynchronously;
//              the outcome comes back as a separate kSwimVerdict push
//              (SWIM's ping-req ack is its own packet).  Nothing in the
//              protocol ever blocks a server worker: a blocking nested
//              ping would starve every request queued behind it for
//              probe_timeout and convert one dead node into a cascade of
//              false suspicions of live ones.
//   suspect    Still no ack: the target becomes a *suspect* (it keeps
//              serving) and the rumor gossips.  The target, seeing itself
//              suspected in incoming gossip, refutes by incrementing its
//              incarnation — only the subject mints its own incarnations.
//   confirm    Suspicion unrefuted for `suspicion_periods` probe periods:
//              the node is confirmed failed, removed from the ring, and a
//              `failed` claim (indisputable) gossips.
//
// Gossip piggybacks on everything — data reads, probes, acks — via
// bounded claim queues with per-claim retransmit budgets (epidemic
// dissemination, O(log N) rounds to saturate).
//
// Every serving-set change bumps the ring epoch (see ring_view.hpp).
// Requests carry the sender's epoch; a server that is ahead answers with
// ViewHint::kStaleView plus the event delta, and the client fast-forwards
// in one round trip.  The client's FaultDetector degrades from placement
// authority to a local evidence source: its verdicts enter the protocol
// as suspicions, and the cluster — not the individual client — decides.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "membership/event.hpp"
#include "membership/member_table.hpp"
#include "obs/flight_recorder.hpp"
#include "membership/ring_view.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "rpc/message.hpp"
#include "rpc/transport.hpp"

namespace ftc::membership {

struct SwimConfig {
  /// Master switch: false (default) preserves the seed's client-local
  /// detection bit-for-bit — no agents, no piggyback, no new RPC verbs.
  bool enabled = false;

  /// Gap between probe rounds (SWIM's protocol period T').
  std::chrono::milliseconds probe_period{15};
  /// Deadline for the direct kSwimPing ack.
  std::chrono::milliseconds probe_timeout{25};
  /// Deadline for each indirect kSwimPingReq round trip (covers the
  /// proxy's own nested ping, so it must exceed probe_timeout).
  std::chrono::milliseconds indirect_timeout{60};
  /// Proxies asked to ping an unresponsive target (SWIM's k).
  std::uint32_t indirect_proxies = 2;
  /// Probe periods a suspicion stays open before confirmation.
  std::uint32_t suspicion_periods = 3;
  /// Distinct accusers required before this agent *originates* a failure
  /// confirmation (gossiped confirms from peers are still indisputable).
  /// 1 (the default) is classic SWIM — any single unrefuted suspicion
  /// confirms.  Raising it to k makes a minority side of a partition
  /// (fewer than k possible accusers) defer its confirms indefinitely
  /// instead of mass-evicting the healthy majority: suspicions still
  /// open and gossip, but the eviction decision needs k voices.
  /// Evidence rides existing gossip/verdict traffic — no new RPCs.
  std::uint32_t suspicion_quorum = 1;
  /// Times each gossip claim is piggybacked before it is dropped
  /// (lambda*log(N) in the paper; a small constant is plenty at our N).
  std::uint32_t claim_retransmits = 6;
  /// Max claims piggybacked per message (bounds header growth).
  std::uint32_t max_piggyback = 8;

  /// When true a confirmed-failed node that refutes (drained node handed
  /// back) is reinstated, up to max_rejoins returns; when false failure
  /// is terminal (the paper's crash-stop model).
  bool allow_rejoin = true;
  std::uint32_t max_rejoins = 3;

  /// When true the Cluster drives probe_tick() from a background
  /// GossipScheduler thread (real-time behaviour); when false tests tick
  /// agents manually for determinism.
  bool background = true;

  /// Deterministic seed for probe-order shuffling (forked per agent).
  std::uint64_t seed = 0;
  /// Ring events kept for kStaleView deltas before full-sync fallback.
  std::size_t event_log_capacity = 256;

  [[nodiscard]] Status validate() const;
};

class MembershipAgent {
 public:
  /// `members` is the initial cluster (must include `self`); all agents
  /// of a job must be constructed with the same list and ring config so
  /// their epoch-0 views agree (fingerprint-identical, like the seed).
  MembershipAgent(NodeId self, rpc::Transport& transport, SwimConfig config,
                  const ring::RingConfig& ring_config,
                  const std::vector<NodeId>& members);
  ~MembershipAgent();

  MembershipAgent(const MembershipAgent&) = delete;
  MembershipAgent& operator=(const MembershipAgent&) = delete;

  /// One SWIM protocol period: expire suspicions into confirmations,
  /// then probe the next member in the randomized round-robin order.
  /// Driven externally (GossipScheduler or a test loop).  Self-gates
  /// when the local endpoint is killed — a crashed node must not keep
  /// probing or refuting through its still-working outgoing path.
  void probe_tick();

  /// Outgoing data-path stamping: sender epoch + piggybacked claims.
  void stamp_request(rpc::RpcRequest& request);

  /// Folds a response's gossip/delta into local state.  Returns the ring
  /// transitions this ingestion caused, in application order — the
  /// caller reacts to them (e.g. HvacClient resets its FaultDetector on
  /// kReinstate).
  std::vector<RingEvent> ingest(const rpc::RpcResponse& response);

  /// Server side: folds a request's gossip (before handling).
  void observe_request(const rpc::RpcRequest& request);

  /// Server side: stamps epoch + gossip onto an outgoing response, and
  /// when the request's epoch lags ours attaches ViewHint::kStaleView
  /// with the event delta (or a full claim dump if the log was
  /// truncated past the requester's epoch).
  void stamp_response(const rpc::RpcRequest& request,
                      rpc::RpcResponse& response);

  /// Dispatches the membership RPC verbs (kSwimPing / kSwimPingReq /
  /// kSwimVerdict / kMembershipSync).  kSwimPingReq replies "accepted"
  /// immediately and runs the nested ping on the transport's async pool;
  /// the reachability outcome is pushed back to the origin as a
  /// kSwimVerdict RPC.  No verb blocks the calling worker thread.
  rpc::RpcResponse handle(const rpc::RpcRequest& request);

  /// Local-evidence suspicion (the FaultDetector's verdict entering the
  /// protocol): starts the suspicion timer and gossips the rumor.  The
  /// node keeps serving until the cluster confirms.
  void suspect(NodeId node);

  /// Elastic scale-up: admits `node` as alive (epoch bump + join claim).
  /// The scheduler tells every sitting member; gossip covers stragglers.
  void join(NodeId node);

  /// Current immutable placement snapshot (never null).
  [[nodiscard]] std::shared_ptr<const RingView> ring_view() const;
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::uint64_t ring_fingerprint() const;

  [[nodiscard]] NodeId self() const;
  /// True while `node` is in the serving set (alive or suspect).
  [[nodiscard]] bool is_serving(NodeId node) const;
  [[nodiscard]] bool is_suspect(NodeId node) const;
  [[nodiscard]] MemberState member_state(NodeId node) const;
  [[nodiscard]] std::uint64_t incarnation(NodeId node) const;

  struct Stats {
    std::uint64_t epoch = 0;
    std::size_t members_alive = 0;
    std::size_t members_suspect = 0;
    std::size_t members_failed = 0;
    std::uint64_t probes_sent = 0;
    std::uint64_t indirect_probes_sent = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t verdicts_sent = 0;      ///< proxy-side kSwimVerdict pushes
    std::uint64_t verdicts_received = 0;  ///< origin-side verdicts ingested
    std::uint64_t verdicts_unreachable = 0;  ///< of those, "could not reach"
    std::uint64_t suspicions = 0;       ///< suspect transitions applied
    std::uint64_t confirms = 0;         ///< failure confirmations applied
    std::uint64_t refutations = 0;      ///< own-incarnation bumps
    std::uint64_t reinstatements = 0;   ///< failed -> alive transitions
    std::uint64_t joins = 0;            ///< nodes admitted after epoch 0
    std::uint64_t gossip_claims_sent = 0;
    std::uint64_t claims_applied = 0;   ///< ingested claims that changed state
    std::uint64_t stale_view_hints_sent = 0;
    std::uint64_t deltas_served = 0;
    std::uint64_t full_syncs_served = 0;
    std::uint64_t fast_forwards = 0;    ///< kStaleView hints acted upon
    // Partition tolerance (PR 10).
    std::uint64_t false_suspicions = 0;   ///< nodes we accused that refuted
    std::uint64_t confirms_deferred = 0;  ///< confirm attempts held for quorum
    std::uint64_t duplicate_verdicts = 0;  ///< re-delivered kSwimVerdict pushes
  };
  [[nodiscard]] Stats stats_snapshot() const;

  /// Attaches the node's flight recorder (not owned; must outlive the
  /// agent).  Ring transitions and suspicion verdicts are then recorded
  /// as membership events — the raw material of a storm timeline (first
  /// suspicion -> ring epoch bump -> recovery).  nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder);

 private:
  struct Impl;
  /// Async probe callbacks capture this shared_ptr, so completions that
  /// outlive the agent (transport drains after destruction) stay safe —
  /// the Mailbox idiom from HvacClient.
  std::shared_ptr<Impl> impl_;
};

}  // namespace ftc::membership
