#include "membership/ring_view.hpp"

#include <algorithm>

namespace ftc::membership {

VersionedRing::VersionedRing(const ring::RingConfig& config,
                             const std::vector<NodeId>& members,
                             std::size_t event_log_capacity)
    : master_(std::make_unique<ring::ConsistentHashRing>(config)),
      log_(event_log_capacity) {
  for (const NodeId node : members) master_->add_node(node);
  snapshot_ = master_->clone_ring();
  current_ = std::make_shared<RingView>(0, snapshot_);
}

std::shared_ptr<const RingView> VersionedRing::view() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t VersionedRing::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::optional<RingEvent> VersionedRing::apply(RingEventType type, NodeId node,
                                              std::uint64_t incarnation,
                                              std::uint64_t min_epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Idempotence: a transition the master already reflects burns no epoch
  // (gossip delivers the same event along many paths).
  if (ring_event_adds(type) == master_->contains(node)) return std::nullopt;
  if (ring_event_adds(type)) {
    master_->add_node(node);
  } else {
    master_->remove_node(node);
  }
  const std::uint64_t previous = epoch_;
  epoch_ = std::max(epoch_ + 1, min_epoch);
  if (epoch_ > previous + 1) {
    // min_epoch made the label jump: the skipped labels belong to peer
    // history this log never recorded, so deltas below the landing label
    // cannot prove coverage — same collapse as adopt_epoch.
    sync_floor_ = std::max(sync_floor_, epoch_);
  }
  snapshot_ = master_->clone_ring();
  current_ = std::make_shared<RingView>(epoch_, snapshot_);
  const RingEvent event{epoch_, type, node, incarnation};
  log_.append(event);
  return event;
}

std::optional<std::vector<RingEvent>> VersionedRing::delta_since(
    std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Below the adoption floor the label space has a hole the log cannot
  // see (adopt_epoch relabels without appending an event): answering
  // would produce an empty-but-plausible delta and the requester would
  // fast-forward its label while missing real transitions.
  if (since < sync_floor_) return std::nullopt;
  return log_.since(since);
}

std::uint64_t VersionedRing::sync_floor() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sync_floor_;
}

void VersionedRing::adopt_epoch(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch <= epoch_) return;
  epoch_ = epoch;
  // The labels we just skipped have no log events behind them; requesters
  // inside the gap must full-sync (delta_since answers nullopt below the
  // floor).  Events applied after this resume normal delta service.
  sync_floor_ = epoch_;
  current_ = std::make_shared<RingView>(epoch_, snapshot_);
}

}  // namespace ftc::membership
