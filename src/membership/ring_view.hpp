// ring_view.hpp - Epoch-versioned immutable snapshots of the hash ring.
//
// The seed's clients mutate their private ring copy in place on every
// failure (`placement_->remove_node(owner)`); nothing names a particular
// ring state, so two clients can disagree about placement with no way to
// even detect it.  VersionedRing replaces in-place mutation with
// clone-then-publish: a master ring is mutated under a lock, a deep copy
// is wrapped in an immutable RingView stamped with a monotonically
// increasing epoch, and readers grab the current view via shared_ptr —
// lookups run lock-free against a snapshot that can never change under
// them, and the epoch number travels in every RPC so peers can detect
// (and fast-forward across) divergence.
//
// Epochs are burned ONLY by serving-set changes (join / probation /
// confirm-failed / reinstate).  Suspicion does not bump the epoch: a
// suspected node still serves (SWIM semantics), so the ring is unchanged
// and routing around suspects is a per-lookup exclusion predicate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "membership/event.hpp"
#include "ring/consistent_hash_ring.hpp"

namespace ftc::membership {

/// One immutable placement snapshot.  Everything is const; safe to share
/// across threads without synchronization.
class RingView {
 public:
  RingView(std::uint64_t epoch,
           std::shared_ptr<const ring::ConsistentHashRing> ring)
      : epoch_(epoch), ring_(std::move(ring)) {}

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] NodeId owner(std::string_view key) const {
    return ring_->owner(key);
  }

  /// Owner skipping nodes the caller's local evidence rules out (e.g.
  /// SWIM suspects, detector out-of-service) without burning an epoch.
  [[nodiscard]] NodeId owner_excluding(
      std::string_view key,
      const std::function<bool(NodeId)>& excluded) const {
    return ring_->owner_of_hash_excluding(ring_->key_position(key), excluded);
  }

  /// First `count` distinct physical nodes clockwise (replica chain).
  [[nodiscard]] std::vector<NodeId> owner_chain(std::string_view key,
                                                std::size_t count) const {
    return ring_->owner_chain(key, count);
  }

  /// Bounded-load owner resolution against this epoch's frozen ring
  /// (see ConsistentHashRing::owner_of_hash_bounded).  Because the
  /// snapshot is immutable, two clients holding views of the same epoch
  /// walk identical candidate chains — spill targets agree wherever the
  /// load predicates agree, which is what keeps the spilled working set
  /// cacheable instead of smearing across the fleet.
  [[nodiscard]] ring::ConsistentHashRing::BoundedLookup owner_bounded(
      std::string_view key, std::size_t max_candidates,
      const std::function<bool(NodeId)>& excluded,
      const std::function<bool(NodeId)>& overloaded) const {
    return ring_->owner_of_hash_bounded(ring_->key_position(key),
                                        max_candidates, excluded, overloaded);
  }

  [[nodiscard]] bool contains(NodeId node) const {
    return ring_->contains(node);
  }
  [[nodiscard]] std::size_t node_count() const { return ring_->node_count(); }
  [[nodiscard]] std::uint64_t fingerprint() const {
    return ring_->fingerprint();
  }
  [[nodiscard]] const ring::ConsistentHashRing& ring() const { return *ring_; }

 private:
  std::uint64_t epoch_;
  std::shared_ptr<const ring::ConsistentHashRing> ring_;
};

/// The mutable master ring plus its published snapshot and event history.
/// Thread-safe; apply() serializes writers, view() is a shared_ptr load.
class VersionedRing {
 public:
  VersionedRing(const ring::RingConfig& config,
                const std::vector<NodeId>& members,
                std::size_t event_log_capacity);

  /// Current snapshot (never null; epoch 0 = the seeded membership).
  [[nodiscard]] std::shared_ptr<const RingView> view() const;
  [[nodiscard]] std::uint64_t epoch() const;

  /// Applies one serving-set transition and publishes a new view.  The
  /// new epoch is max(local + 1, min_epoch): when replaying a peer's
  /// delta, min_epoch carries the peer's epoch label so both sides end
  /// on the SAME number for the same event (gossip can collapse
  /// histories; without label adoption followers would drift low).
  /// Redundant events (adding a present node, removing an absent one)
  /// return nullopt and burn no epoch.
  std::optional<RingEvent> apply(RingEventType type, NodeId node,
                                 std::uint64_t incarnation,
                                 std::uint64_t min_epoch = 0);

  /// Events after `since`, oldest first; nullopt when the log cannot
  /// prove coverage — either events past `since` were evicted, or `since`
  /// lies below the full-sync floor left by a label adoption (see
  /// adopt_epoch).  Either way the caller must full-sync.
  [[nodiscard]] std::optional<std::vector<RingEvent>> delta_since(
      std::uint64_t since) const;

  /// Lowest epoch label delta_since can still answer (see adopt_epoch).
  [[nodiscard]] std::uint64_t sync_floor() const;

  /// Fast-forwards the epoch LABEL without changing the ring — used after
  /// ingesting a peer's delta whose transitions were all already applied
  /// locally (gossip raced the delta), or after a full claim dump: the
  /// serving sets agree but our label lags, and labels must converge for
  /// epoch comparison to mean anything.  No-op unless `epoch` is ahead.
  ///
  /// An effective adoption jumps the label PAST the newest logged event,
  /// leaving labels in (last event, adopted] with no log coverage.  The
  /// adopted label becomes the full-sync floor: delta_since for anything
  /// below it answers nullopt (forcing a full claim dump) instead of an
  /// empty-looking delta that would let a requester adopt our label while
  /// silently missing transitions — the large-gap divergence bug.
  void adopt_epoch(std::uint64_t epoch);

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<ring::ConsistentHashRing> master_;
  /// Snapshot current_ wraps; kept so adopt_epoch can relabel without
  /// re-cloning the master.
  std::shared_ptr<const ring::ConsistentHashRing> snapshot_;
  std::shared_ptr<const RingView> current_;
  EventLog log_;
  std::uint64_t epoch_ = 0;
  /// Set by adopt_epoch; labels below it are not delta-answerable.
  std::uint64_t sync_floor_ = 0;
};

}  // namespace ftc::membership
