// event.hpp - Epoch-stamped ring transitions and the bounded event log.
//
// Every change to the serving set — a node joining, being confirmed
// failed, entering probation, or being reinstated — is recorded as a
// RingEvent carrying the epoch it created.  The log is the substance of
// the kStaleView fast-forward handshake: a server answering a request
// stamped with an older epoch ships every event the requester is missing,
// so the requester replays them instead of rediscovering failures through
// its own timeouts.  The log is bounded; once events past a requester's
// epoch have been dropped the delta is unanswerable and the server falls
// back to a full-state claim dump (see MembershipAgent::stamp_response).
//
// Suspicion is deliberately NOT a ring event: a suspected node keeps
// serving (SWIM semantics) so the ring does not change and no epoch is
// burned — only the four serving-set transitions appear here.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace ftc::membership {

/// Alias of the library-wide node identifier (see common/types.hpp).
using NodeId = ftc::NodeId;

enum class RingEventType : std::uint8_t {
  kJoin = 0,           ///< Node entered the serving set (elastic scale-up).
  kProbation = 1,      ///< Confirmed failed, removed, may be reinstated.
  kConfirmFailed = 2,  ///< Confirmed failed terminally (rejoin disabled or
                       ///< the node flapped past the rejoin budget).
  kReinstate = 3,      ///< A failed node refuted its death; re-added.
};

const char* ring_event_type_name(RingEventType type);

/// True when the event adds `node` to the serving set, false when it
/// removes it.
[[nodiscard]] constexpr bool ring_event_adds(RingEventType type) {
  return type == RingEventType::kJoin || type == RingEventType::kReinstate;
}

struct RingEvent {
  std::uint64_t epoch = 0;  ///< Epoch this event created (post-transition).
  RingEventType type = RingEventType::kJoin;
  NodeId node = ftc::kInvalidNode;
  std::uint64_t incarnation = 0;  ///< Subject's incarnation at the event.
};

/// Bounded FIFO of ring events, answering "everything after epoch E".
/// Single-threaded; VersionedRing serializes access under its own lock.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity);

  void append(const RingEvent& event);

  /// Events with epoch > `since`, oldest first.  nullopt when events past
  /// `since` have been evicted — the caller must full-sync instead.
  [[nodiscard]] std::optional<std::vector<RingEvent>> since(
      std::uint64_t since) const;

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Highest epoch ever evicted (0 = nothing evicted yet).
  [[nodiscard]] std::uint64_t evicted_through() const {
    return evicted_through_;
  }

 private:
  std::size_t capacity_;
  std::deque<RingEvent> events_;
  std::uint64_t evicted_through_ = 0;
};

}  // namespace ftc::membership
