#include "membership/swim.hpp"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace ftc::membership {

namespace {

MemberState claim_state(std::uint8_t raw) {
  switch (raw) {
    case 0: return MemberState::kAlive;
    case 1: return MemberState::kSuspect;
    default: return MemberState::kFailed;
  }
}

}  // namespace

Status SwimConfig::validate() const {
  using std::chrono::milliseconds;
  if (probe_period <= milliseconds::zero()) {
    return Status::invalid_argument("probe_period must be positive");
  }
  if (probe_timeout <= milliseconds::zero()) {
    return Status::invalid_argument("probe_timeout must be positive");
  }
  if (indirect_timeout < probe_timeout) {
    return Status::invalid_argument(
        "indirect_timeout must cover the proxy's nested probe_timeout");
  }
  if (suspicion_periods == 0) {
    return Status::invalid_argument("suspicion_periods must be >= 1");
  }
  if (suspicion_quorum == 0) {
    return Status::invalid_argument("suspicion_quorum must be >= 1");
  }
  if (claim_retransmits == 0 || max_piggyback == 0) {
    return Status::invalid_argument(
        "claim_retransmits and max_piggyback must be >= 1");
  }
  if (event_log_capacity == 0) {
    return Status::invalid_argument("event_log_capacity must be >= 1");
  }
  return Status::ok();
}

struct MembershipAgent::Impl : std::enable_shared_from_this<Impl> {
  using Clock = MemberTable::Clock;

  Impl(NodeId self_node, rpc::Transport& transport_ref, SwimConfig cfg,
       const ring::RingConfig& ring_config,
       const std::vector<NodeId>& members)
      : self(self_node),
        transport(transport_ref),
        config(cfg),
        table(cfg.max_rejoins),
        ring(ring_config, members, cfg.event_log_capacity),
        rng(Rng(cfg.seed).fork(self_node)) {
    for (const NodeId node : members) table.seed(node);
  }

  const NodeId self;
  rpc::Transport& transport;
  const SwimConfig config;

  // Lock order: `mutex` may be taken first and VersionedRing's internal
  // lock second (ring never calls back up).  The mutex is NEVER held
  // across transport.call/call_async: the transport may run the
  // completion inline on this thread (shutdown path), and the callback
  // re-locks — collect work under the lock, release, then send.
  mutable std::mutex mutex;
  MemberTable table;
  VersionedRing ring;
  std::uint64_t my_incarnation = 0;
  Rng rng;

  struct QueuedClaim {
    rpc::MembershipClaim claim;
    std::uint32_t budget = 0;
  };
  std::deque<QueuedClaim> claims;

  std::vector<NodeId> probe_order;
  std::size_t probe_index = 0;

  /// One outstanding indirect-probe round per target.  `awaiting` counts
  /// proxies that can still report: each proxy gives up its slot exactly
  /// once — either its accept fails, or its kSwimVerdict push arrives.
  /// A positive verdict closes the round immediately; when every slot
  /// drains negative (or the deadline passes with verdicts lost) the
  /// target becomes a suspect.  `incarnation` pins the subject's
  /// incarnation at round start — a refutation mid-round voids the
  /// round's negative evidence; `reported` makes verdict handling
  /// idempotent under duplicated delivery (each proxy's slot is spent at
  /// most once however many times its push arrives).
  struct IndirectRound {
    int awaiting = 0;
    Clock::time_point deadline;
    std::uint64_t incarnation = 0;
    std::vector<NodeId> reported;
  };
  std::unordered_map<NodeId, IndirectRound> indirect_rounds;

  /// Quorum-confirmed suspicion: who has accused `subject` at which
  /// incarnation.  Evidence arrives on traffic that flows anyway —
  /// non-alive gossip claims name their sender as an accuser, negative
  /// kSwimVerdict pushes name the proxy, and local suspicions name us.
  /// A refutation (higher incarnation) voids all accumulated accusers.
  struct SuspicionEvidence {
    std::uint64_t incarnation = 0;
    std::vector<NodeId> accusers;
  };
  std::unordered_map<NodeId, SuspicionEvidence> suspicion_evidence;
  /// Subjects *we* accused, for the false-suspicion metric: a refutation
  /// of a node in this set means our evidence was wrong (typically a
  /// partition, not a death).
  std::unordered_set<NodeId> my_accusations;

  Stats stats;

  /// Flight recorder (not owned; guarded by `mutex` like the rest of the
  /// mutable state).  Membership transitions are rare and load-bearing
  /// for postmortems, so they are recorded whenever a recorder is
  /// attached — no sampling gate.
  obs::FlightRecorder* recorder = nullptr;

  void record_ring_event_locked(const RingEvent& event) {
    if (recorder == nullptr) return;
    recorder->record_event(obs::RecordKind::kRingUpdate, obs::TraceContext{},
                           self, static_cast<std::uint32_t>(event.type),
                           event.epoch, ring_event_type_name(event.type));
  }

  void record_suspicion_locked(NodeId node, std::uint64_t incarnation) {
    if (recorder == nullptr) return;
    // Record.node carries the *suspect*; value carries its incarnation.
    recorder->record_event(obs::RecordKind::kSuspicion, obs::TraceContext{},
                           node, 0, incarnation, "swim_suspect");
  }

  // ---- claim queue ------------------------------------------------------

  rpc::MembershipClaim make_claim_locked(NodeId node) const {
    rpc::MembershipClaim claim;
    claim.subject = node;
    claim.state = static_cast<std::uint8_t>(table.state(node));
    claim.incarnation =
        node == self ? my_incarnation : table.incarnation(node);
    return claim;
  }

  void enqueue_claim_locked(const rpc::MembershipClaim& claim) {
    // Newest claim about a subject supersedes any queued one — SWIM
    // gossips current beliefs, not a history.
    claims.erase(std::remove_if(claims.begin(), claims.end(),
                                [&](const QueuedClaim& q) {
                                  return q.claim.subject == claim.subject;
                                }),
                 claims.end());
    claims.push_back(QueuedClaim{claim, config.claim_retransmits});
  }

  std::vector<rpc::MembershipClaim> take_piggyback_locked() {
    std::vector<rpc::MembershipClaim> out;
    const std::size_t take =
        std::min<std::size_t>(config.max_piggyback, claims.size());
    for (std::size_t i = 0; i < take; ++i) {
      QueuedClaim entry = claims.front();
      claims.pop_front();
      out.push_back(entry.claim);
      if (--entry.budget > 0) claims.push_back(entry);
    }
    stats.gossip_claims_sent += out.size();
    return out;
  }

  std::vector<rpc::MembershipClaim> full_dump_locked() const {
    std::vector<rpc::MembershipClaim> dump;
    for (const NodeId node : table.members()) {
      dump.push_back(make_claim_locked(node));
    }
    return dump;
  }

  // ---- suspicion quorum --------------------------------------------------

  void note_accuser_locked(NodeId subject, std::uint64_t incarnation,
                           NodeId accuser) {
    if (subject == self || subject == ftc::kInvalidNode ||
        accuser == ftc::kInvalidNode || accuser == subject) {
      return;
    }
    SuspicionEvidence& evidence = suspicion_evidence[subject];
    if (incarnation > evidence.incarnation) {
      evidence.incarnation = incarnation;
      evidence.accusers.clear();
    } else if (incarnation < evidence.incarnation) {
      return;  // stale testimony about a refuted incarnation
    }
    if (std::find(evidence.accusers.begin(), evidence.accusers.end(),
                  accuser) == evidence.accusers.end()) {
      evidence.accusers.push_back(accuser);
    }
    if (accuser == self) my_accusations.insert(subject);
  }

  /// Accusers needed before this agent originates a confirm.  Capped by
  /// how many accusers can even exist (serving peers minus the subject),
  /// so small clusters — and test harnesses — are never deadlocked by a
  /// quorum larger than the membership.
  [[nodiscard]] std::size_t quorum_needed_locked() const {
    const std::size_t peers = table.serving_members().size();
    const std::size_t cap = peers > 1 ? peers - 1 : 1;
    return std::min<std::size_t>(
        std::max<std::uint32_t>(1, config.suspicion_quorum), cap);
  }

  [[nodiscard]] bool quorum_met_locked(NodeId subject) const {
    if (config.suspicion_quorum <= 1) return true;  // classic SWIM
    const auto it = suspicion_evidence.find(subject);
    if (it == suspicion_evidence.end()) return false;
    if (it->second.incarnation < table.incarnation(subject)) return false;
    return it->second.accusers.size() >= quorum_needed_locked();
  }

  void clear_evidence_locked(NodeId subject) {
    suspicion_evidence.erase(subject);
    my_accusations.erase(subject);
  }

  // ---- claim / delta application ----------------------------------------

  /// Folds one claim into the table, maps the outcome onto ring events,
  /// and re-gossips anything newsworthy.  `min_epoch` carries a peer's
  /// epoch label when the claim replays an event-log delta.
  void apply_claim_locked(MemberState state, NodeId node,
                          std::uint64_t incarnation,
                          std::vector<RingEvent>& events,
                          std::uint64_t min_epoch = 0) {
    // Refutation: a non-alive rumor about *us* at our incarnation (or
    // ahead).  Only the subject mints its own incarnations — bump past
    // the rumor and gossip the proof of life.  A node whose endpoint is
    // killed is genuinely dead and must not argue.
    if (node == self && state != MemberState::kAlive &&
        !transport.is_killed(self)) {
      if (incarnation >= my_incarnation) {
        my_incarnation = incarnation + 1;
        table.apply(MemberState::kAlive, self, my_incarnation);
        enqueue_claim_locked(make_claim_locked(self));
        ++stats.refutations;
        return;
      }
      // A STALE rumor of our death is still circulating.  The original
      // refutation's retransmit budget can be long spent — a partition
      // lets the rumor outlive it on the far side, and if that side's own
      // gossip about us has also drained, nobody is left to correct them.
      // Re-announce the existing proof of life with a fresh budget; the
      // queue supersedes per subject, so sightings cannot pile up.
      enqueue_claim_locked(make_claim_locked(self));
      return;
    }

    const Applied applied = table.apply(state, node, incarnation);
    if (applied == Applied::kNone) return;
    ++stats.claims_applied;

    switch (applied) {
      case Applied::kJoined: {
        clear_evidence_locked(node);
        if (auto event = ring.apply(RingEventType::kJoin, node, incarnation,
                                    min_epoch)) {
          ++stats.joins;
          record_ring_event_locked(*event);
          events.push_back(*event);
        }
        enqueue_claim_locked(make_claim_locked(node));
        break;
      }
      case Applied::kSuspected: {
        ++stats.suspicions;
        record_suspicion_locked(node, incarnation);
        table.set_suspect_deadline(
            node, Clock::now() + config.suspicion_periods *
                                     config.probe_period);
        enqueue_claim_locked(make_claim_locked(node));
        break;
      }
      case Applied::kConfirmed: {
        ++stats.confirms;
        clear_evidence_locked(node);
        const RingEventType type =
            config.allow_rejoin && !table.is_terminal(node)
                ? RingEventType::kProbation
                : RingEventType::kConfirmFailed;
        if (auto event = ring.apply(type, node, table.incarnation(node),
                                    min_epoch)) {
          record_ring_event_locked(*event);
          events.push_back(*event);
        }
        enqueue_claim_locked(make_claim_locked(node));
        break;
      }
      case Applied::kReinstated: {
        ++stats.reinstatements;
        clear_evidence_locked(node);
        if (auto event = ring.apply(RingEventType::kReinstate, node,
                                    incarnation, min_epoch)) {
          record_ring_event_locked(*event);
          events.push_back(*event);
        }
        enqueue_claim_locked(make_claim_locked(node));
        break;
      }
      case Applied::kRefuted:
        // The subject minted a higher incarnation: every accusation below
        // it is void.  If we were among the accusers our verdict was
        // wrong — typically a severed link, not a death.
        if (my_accusations.erase(node) > 0) ++stats.false_suspicions;
        suspicion_evidence.erase(node);
        enqueue_claim_locked(make_claim_locked(node));
        break;
      case Applied::kRefreshed:
        enqueue_claim_locked(make_claim_locked(node));
        break;
      case Applied::kNone:
        break;
    }
  }

  /// `from` names the message's sender so non-alive claims double as
  /// suspicion testimony (quorum evidence rides the gossip that flows
  /// anyway).  kInvalidNode — e.g. ingesting a response, which carries no
  /// sender id — folds state without counting an accuser.
  void fold_gossip_locked(const std::vector<rpc::MembershipClaim>& gossip,
                          std::vector<RingEvent>& events,
                          NodeId from = ftc::kInvalidNode) {
    for (const rpc::MembershipClaim& claim : gossip) {
      if (claim.subject == ftc::kInvalidNode) continue;
      const MemberState state = claim_state(claim.state);
      if (from != ftc::kInvalidNode && state != MemberState::kAlive &&
          claim.incarnation >= table.incarnation(claim.subject)) {
        note_accuser_locked(claim.subject, claim.incarnation, from);
      }
      apply_claim_locked(state, claim.subject, claim.incarnation, events);
    }
  }

  std::vector<RingEvent> ingest_response(const rpc::RpcResponse& response) {
    std::vector<RingEvent> events;
    std::lock_guard<std::mutex> lock(mutex);
    fold_gossip_locked(response.gossip, events);
    if (response.view_hint == rpc::ViewHint::kStaleView) {
      ++stats.fast_forwards;
      for (const rpc::RingDelta& delta : response.view_delta) {
        const auto type = static_cast<RingEventType>(delta.kind);
        apply_claim_locked(ring_event_adds(type) ? MemberState::kAlive
                                                 : MemberState::kFailed,
                           delta.node, delta.incarnation, events,
                           delta.epoch);
      }
      // The responder shipped everything between our epoch and its own,
      // so its label is now ours too — even when every transition was
      // already known locally (gossip raced the delta) and the replay
      // above was a no-op.
      if (response.ring_epoch != rpc::kEpochUnaware) {
        ring.adopt_epoch(response.ring_epoch);
      }
    }
    return events;
  }

  // ---- probing ----------------------------------------------------------

  NodeId next_probe_target_locked() {
    std::vector<NodeId> serving = table.serving_members();
    serving.erase(std::remove(serving.begin(), serving.end(), self),
                  serving.end());
    if (serving.empty()) return ftc::kInvalidNode;
    // Randomized round robin (SWIM Sec 4.3): shuffle once, walk the
    // order, reshuffle when exhausted — bounds worst-case first-detection
    // time at one full round, unlike pure random choice.
    for (int pass = 0; pass < 2; ++pass) {
      while (probe_index < probe_order.size()) {
        const NodeId candidate = probe_order[probe_index++];
        if (candidate != self &&
            table.state(candidate) != MemberState::kFailed) {
          return candidate;
        }
      }
      probe_order = serving;
      rng.shuffle(probe_order);
      probe_index = 0;
    }
    return serving[rng.below(serving.size())];
  }

  void probe_tick() {
    NodeId target = ftc::kInvalidNode;
    rpc::RpcRequest request;
    {
      std::lock_guard<std::mutex> lock(mutex);
      // A crashed node must not keep probing: kill() only blocks the
      // inbound path, and a dead node that still sends would refute its
      // own death forever through piggybacked gossip.
      if (transport.is_killed(self)) return;

      std::vector<RingEvent> events;  // local bookkeeping only
      const Clock::time_point now = Clock::now();

      // Indirect rounds whose verdict window closed without vindication
      // (verdict pushes lost, proxies wedged): nobody vouched for the
      // target, so its suspicion starts now.
      std::vector<NodeId> overdue;
      for (const auto& [node, round] : indirect_rounds) {
        if (round.deadline <= now) overdue.push_back(node);
      }
      for (const NodeId node : overdue) {
        indirect_rounds.erase(node);
        note_accuser_locked(node, table.incarnation(node), self);
        apply_claim_locked(MemberState::kSuspect, node,
                           table.incarnation(node), events);
      }

      for (const NodeId expired : table.expired_suspects(now)) {
        // Suspicion ran its course unrefuted.  Quorum gate: originating a
        // confirm needs k distinct accusers on record at the suspect's
        // current incarnation — a minority cut off from the majority can
        // never muster them, so it defers (and re-arms the window) instead
        // of mass-evicting healthy nodes.  Confirms gossiped BY others are
        // still indisputable and are applied in fold_gossip as usual.
        if (!quorum_met_locked(expired)) {
          ++stats.confirms_deferred;
          table.set_suspect_deadline(expired, now + config.probe_period);
          continue;
        }
        apply_claim_locked(MemberState::kFailed, expired,
                           table.incarnation(expired), events);
      }

      target = next_probe_target_locked();
      if (target == ftc::kInvalidNode) return;
      request.op = rpc::Op::kSwimPing;
      request.client_node = self;
      request.ring_epoch = ring.epoch();
      request.ring_fingerprint = ring.view()->fingerprint();
      request.gossip = take_piggyback_locked();
      ++stats.probes_sent;
    }

    auto impl = shared_from_this();
    transport.call_async(
        target, std::move(request), config.probe_timeout,
        [impl, target](const StatusOr<rpc::RpcResponse>& result) {
          if (result.is_ok() && result.value().code == StatusCode::kOk) {
            {
              std::lock_guard<std::mutex> lock(impl->mutex);
              ++impl->stats.acks_received;
            }
            impl->ingest_response(result.value());
          } else {
            impl->on_probe_timeout(target);
          }
        });
  }

  void on_probe_timeout(NodeId target) {
    std::vector<NodeId> proxies;
    rpc::RpcRequest request;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (transport.is_killed(self)) return;
      if (table.state(target) == MemberState::kFailed) return;
      // One outstanding round per target; re-probes of a slow node must
      // not multiply the verdict bookkeeping.
      if (indirect_rounds.count(target) != 0) return;

      std::vector<NodeId> candidates = table.serving_members();
      candidates.erase(
          std::remove_if(candidates.begin(), candidates.end(),
                         [&](NodeId n) { return n == self || n == target; }),
          candidates.end());
      rng.shuffle(candidates);
      const std::size_t k = std::min<std::size_t>(config.indirect_proxies,
                                                  candidates.size());
      proxies.assign(candidates.begin(), candidates.begin() + k);
      if (proxies.empty()) {
        // Nobody left to ask: our word alone starts the suspicion.
        std::vector<RingEvent> events;
        note_accuser_locked(target, table.incarnation(target), self);
        apply_claim_locked(MemberState::kSuspect, target,
                           table.incarnation(target), events);
        return;
      }
      IndirectRound round;
      round.awaiting = static_cast<int>(proxies.size());
      round.deadline = Clock::now() + config.indirect_timeout;
      round.incarnation = table.incarnation(target);
      indirect_rounds[target] = std::move(round);
      request.op = rpc::Op::kSwimPingReq;
      request.client_node = self;
      request.subject = target;
      request.ring_epoch = ring.epoch();
      request.ring_fingerprint = ring.view()->fingerprint();
      request.gossip = take_piggyback_locked();
      stats.indirect_probes_sent += proxies.size();
    }

    auto impl = shared_from_this();
    for (const NodeId proxy : proxies) {
      transport.call_async(
          proxy, request, config.probe_timeout,
          [impl, target](const StatusOr<rpc::RpcResponse>& result) {
            if (result.is_ok()) {
              // The proxy accepted the errand; its reachability verdict
              // arrives later as a kSwimVerdict push.  The accept itself
              // still carries gossip.
              impl->ingest_response(result.value());
            } else {
              // This proxy will never report back: its slot is gone.
              impl->indirect_slot_lost(target);
            }
          });
    }
  }

  void indirect_slot_lost(NodeId target) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = indirect_rounds.find(target);
    if (it == indirect_rounds.end()) return;
    if (--it->second.awaiting > 0) return;
    indirect_rounds.erase(it);
    if (transport.is_killed(self)) return;
    std::vector<RingEvent> events;
    note_accuser_locked(target, table.incarnation(target), self);
    apply_claim_locked(MemberState::kSuspect, target,
                       table.incarnation(target), events);
  }

  /// Proxy side: report the outcome of a kSwimPingReq errand back to the
  /// node that asked.  Fire-and-forget; a lost push is covered by the
  /// origin's round deadline.
  void push_verdict(NodeId origin, NodeId subject, bool reachable) {
    rpc::RpcRequest verdict;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (transport.is_killed(self)) return;
      verdict.op = rpc::Op::kSwimVerdict;
      verdict.client_node = self;
      verdict.subject = subject;
      verdict.subject_reachable = reachable;
      verdict.ring_epoch = ring.epoch();
      verdict.ring_fingerprint = ring.view()->fingerprint();
      verdict.gossip = take_piggyback_locked();
      ++stats.verdicts_sent;
    }
    auto impl = shared_from_this();
    transport.call_async(
        origin, std::move(verdict), config.probe_timeout,
        [impl](const StatusOr<rpc::RpcResponse>& result) {
          if (result.is_ok()) impl->ingest_response(result.value());
        });
  }

  // ---- server-side handling ---------------------------------------------

  void stamp_response_locked(const rpc::RpcRequest& request,
                             rpc::RpcResponse& response) {
    const std::uint64_t local_epoch = ring.epoch();
    response.ring_epoch = local_epoch;
    // Epoch labels are per-node counters: after a partition heals, both
    // sides can present the SAME label for DIFFERENT rings (each burned
    // its own transitions while split).  The numeric comparison below is
    // blind to that, so a matching label with a mismatched fingerprint
    // gets the full-dump treatment — claims are idempotent and the
    // incarnation gates decide per member which side is right.
    if (request.ring_epoch == local_epoch && request.ring_fingerprint != 0 &&
        request.ring_fingerprint != ring.view()->fingerprint()) {
      response.view_hint = rpc::ViewHint::kStaleView;
      ++stats.stale_view_hints_sent;
      response.gossip = full_dump_locked();
      ++stats.full_syncs_served;
      return;
    }
    if (request.ring_epoch != rpc::kEpochUnaware &&
        request.ring_epoch < local_epoch) {
      response.view_hint = rpc::ViewHint::kStaleView;
      ++stats.stale_view_hints_sent;
      if (auto delta = ring.delta_since(request.ring_epoch)) {
        for (const RingEvent& event : *delta) {
          response.view_delta.push_back(rpc::RingDelta{
              event.epoch, static_cast<std::uint8_t>(event.type), event.node,
              event.incarnation});
        }
        ++stats.deltas_served;
      } else {
        // The retained log cannot cover the requester's gap (truncated,
        // or our label jumped past the last event via adopt_epoch): ship
        // the full state as claims instead — claims are idempotent and
        // complete; the requester reconciles and adopts our label.
        // Decided BEFORE the piggyback draw so queued claims keep their
        // retransmit budgets instead of being popped and overwritten.
        response.gossip = full_dump_locked();
        ++stats.full_syncs_served;
        return;
      }
    }
    response.gossip = take_piggyback_locked();
  }

  rpc::RpcResponse handle(const rpc::RpcRequest& request) {
    rpc::RpcResponse response;
    switch (request.op) {
      case rpc::Op::kSwimPing: {
        std::lock_guard<std::mutex> lock(mutex);
        std::vector<RingEvent> events;
        fold_gossip_locked(request.gossip, events, request.client_node);
        response.code = StatusCode::kOk;
        stamp_response_locked(request, response);
        return response;
      }
      case rpc::Op::kSwimPingReq: {
        const NodeId origin = request.client_node;
        const NodeId subject = request.subject;
        rpc::RpcRequest nested;
        {
          std::lock_guard<std::mutex> lock(mutex);
          std::vector<RingEvent> events;
          fold_gossip_locked(request.gossip, events, request.client_node);
          nested.op = rpc::Op::kSwimPing;
          nested.client_node = self;
          nested.ring_epoch = ring.epoch();
          nested.ring_fingerprint = ring.view()->fingerprint();
          nested.gossip = take_piggyback_locked();
          // Accepted — NOT a reachability verdict.  That comes back to
          // the origin as a kSwimVerdict push once the nested ping
          // resolves.  Blocking here would monopolize this server worker
          // for probe_timeout and time out every request queued behind
          // it, converting one dead node into false suspicions of live
          // ones — a self-sustaining cascade.
          response.code = StatusCode::kOk;
          stamp_response_locked(request, response);
        }
        auto impl = shared_from_this();
        transport.call_async(
            subject, std::move(nested), config.probe_timeout,
            [impl, origin, subject](const StatusOr<rpc::RpcResponse>& result) {
              const bool reachable = result.is_ok() &&
                                     result.value().code == StatusCode::kOk;
              if (result.is_ok()) impl->ingest_response(result.value());
              impl->push_verdict(origin, subject, reachable);
            });
        return response;
      }
      case rpc::Op::kSwimVerdict: {
        std::lock_guard<std::mutex> lock(mutex);
        std::vector<RingEvent> events;
        fold_gossip_locked(request.gossip, events, request.client_node);
        ++stats.verdicts_received;
        if (!request.subject_reachable) ++stats.verdicts_unreachable;
        const auto it = indirect_rounds.find(request.subject);
        if (it != indirect_rounds.end()) {
          IndirectRound& round = it->second;
          const NodeId proxy = request.client_node;
          if (std::find(round.reported.begin(), round.reported.end(),
                        proxy) != round.reported.end()) {
            // Duplicated delivery (at-least-once fabric re-send): this
            // proxy's slot is already spent — folding it again would let
            // one proxy's verdict count twice and suspect the subject on
            // a single opinion.  Gossip above was still folded (claims
            // are idempotent); the round state must not move.
            ++stats.duplicate_verdicts;
          } else {
            round.reported.push_back(proxy);
            if (request.subject_reachable) {
              // Someone reached the subject: vindicated, round closed.
              indirect_rounds.erase(it);
            } else {
              // Negative verdicts are testimony at the incarnation the
              // round was opened for.
              note_accuser_locked(request.subject, round.incarnation, proxy);
              if (--round.awaiting <= 0) {
                const std::uint64_t opened_at = round.incarnation;
                indirect_rounds.erase(it);
                // Incarnation gate: a refutation that landed mid-round
                // voids the round's negative evidence — suspecting the
                // subject's NEW incarnation on OLD testimony is exactly
                // the false-cascade quorum suspicion exists to stop.
                if (table.incarnation(request.subject) == opened_at) {
                  note_accuser_locked(request.subject, opened_at, self);
                  apply_claim_locked(MemberState::kSuspect, request.subject,
                                     table.incarnation(request.subject),
                                     events);
                }
              }
            }
          }
        }
        response.code = StatusCode::kOk;
        stamp_response_locked(request, response);
        return response;
      }
      case rpc::Op::kMembershipSync: {
        std::lock_guard<std::mutex> lock(mutex);
        std::vector<RingEvent> events;
        fold_gossip_locked(request.gossip, events, request.client_node);
        response.code = StatusCode::kOk;
        response.ring_epoch = ring.epoch();
        // Force full adoption: an explicit sync always ships the whole
        // state and the requester takes our epoch label with it.
        response.view_hint = rpc::ViewHint::kStaleView;
        response.gossip = full_dump_locked();
        ++stats.full_syncs_served;
        return response;
      }
      default:
        response.code = StatusCode::kInvalidArgument;
        return response;
    }
  }
};

MembershipAgent::MembershipAgent(NodeId self, rpc::Transport& transport,
                                 SwimConfig config,
                                 const ring::RingConfig& ring_config,
                                 const std::vector<NodeId>& members)
    : impl_(std::make_shared<Impl>(self, transport, config, ring_config,
                                   members)) {}

MembershipAgent::~MembershipAgent() = default;

void MembershipAgent::probe_tick() { impl_->probe_tick(); }

void MembershipAgent::stamp_request(rpc::RpcRequest& request) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  request.ring_epoch = impl_->ring.epoch();
  request.ring_fingerprint = impl_->ring.view()->fingerprint();
  request.gossip = impl_->take_piggyback_locked();
}

std::vector<RingEvent> MembershipAgent::ingest(
    const rpc::RpcResponse& response) {
  return impl_->ingest_response(response);
}

void MembershipAgent::observe_request(const rpc::RpcRequest& request) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<RingEvent> events;
  impl_->fold_gossip_locked(request.gossip, events, request.client_node);
}

void MembershipAgent::stamp_response(const rpc::RpcRequest& request,
                                     rpc::RpcResponse& response) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->stamp_response_locked(request, response);
}

rpc::RpcResponse MembershipAgent::handle(const rpc::RpcRequest& request) {
  return impl_->handle(request);
}

void MembershipAgent::suspect(NodeId node) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (node == impl_->self) return;
  std::vector<RingEvent> events;
  impl_->note_accuser_locked(node, impl_->table.incarnation(node),
                             impl_->self);
  impl_->apply_claim_locked(MemberState::kSuspect, node,
                            impl_->table.incarnation(node), events);
}

void MembershipAgent::join(NodeId node) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<RingEvent> events;
  impl_->apply_claim_locked(MemberState::kAlive, node, 0, events);
}

std::shared_ptr<const RingView> MembershipAgent::ring_view() const {
  return impl_->ring.view();
}

std::uint64_t MembershipAgent::epoch() const { return impl_->ring.epoch(); }

std::uint64_t MembershipAgent::ring_fingerprint() const {
  return impl_->ring.view()->fingerprint();
}

NodeId MembershipAgent::self() const { return impl_->self; }

bool MembershipAgent::is_serving(NodeId node) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->table.contains(node) &&
         impl_->table.state(node) != MemberState::kFailed;
}

bool MembershipAgent::is_suspect(NodeId node) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->table.state(node) == MemberState::kSuspect;
}

MemberState MembershipAgent::member_state(NodeId node) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->table.state(node);
}

std::uint64_t MembershipAgent::incarnation(NodeId node) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return node == impl_->self ? impl_->my_incarnation
                             : impl_->table.incarnation(node);
}

MembershipAgent::Stats MembershipAgent::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Stats stats = impl_->stats;
  stats.epoch = impl_->ring.epoch();
  stats.members_alive = impl_->table.alive_count();
  stats.members_suspect = impl_->table.suspect_count();
  stats.members_failed = impl_->table.failed_count();
  return stats;
}

void MembershipAgent::set_flight_recorder(obs::FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->recorder = recorder;
}

}  // namespace ftc::membership
