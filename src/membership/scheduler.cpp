#include "membership/scheduler.hpp"

namespace ftc::membership {

GossipScheduler::GossipScheduler(std::chrono::milliseconds period)
    : period_(period <= std::chrono::milliseconds::zero()
                  ? std::chrono::milliseconds(1)
                  : period) {}

GossipScheduler::~GossipScheduler() { stop(); }

void GossipScheduler::add(MembershipAgent* agent) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (agent != nullptr) agents_.push_back(agent);
}

void GossipScheduler::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void GossipScheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool GossipScheduler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void GossipScheduler::tick_all() {
  // Copy under the lock; probe_tick issues RPCs and must not run while
  // mutex_ is held (an agent being ticked may block on a slow endpoint).
  std::vector<MembershipAgent*> agents;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    agents = agents_;
  }
  for (MembershipAgent* agent : agents) agent->probe_tick();
  std::lock_guard<std::mutex> lock(mutex_);
  ++ticks_;
}

std::uint64_t GossipScheduler::ticks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

void GossipScheduler::run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, period_,
                       [this] { return stop_requested_; })) {
        return;
      }
    }
    tick_all();
  }
}

}  // namespace ftc::membership
