#include "membership/member_table.hpp"

#include <algorithm>

namespace ftc::membership {

const char* member_state_name(MemberState state) {
  switch (state) {
    case MemberState::kAlive: return "alive";
    case MemberState::kSuspect: return "suspect";
    case MemberState::kFailed: return "failed";
  }
  return "?";
}

MemberTable::MemberTable(std::uint32_t max_rejoins)
    : max_rejoins_(max_rejoins) {}

void MemberTable::seed(NodeId node) {
  members_.try_emplace(node);
}

Applied MemberTable::apply(MemberState claimed, NodeId node,
                           std::uint64_t incarnation, bool* was_known) {
  const auto it = members_.find(node);
  if (was_known != nullptr) *was_known = it != members_.end();

  if (it == members_.end()) {
    // Unknown nodes are introduced in the claimed state: gossip is the
    // only way a late joiner learns the membership, including its holes.
    MemberInfo info;
    info.state = claimed;
    info.incarnation = incarnation;
    members_.emplace(node, info);
    switch (claimed) {
      case MemberState::kAlive: return Applied::kJoined;
      case MemberState::kSuspect: return Applied::kSuspected;
      case MemberState::kFailed: return Applied::kConfirmed;
    }
    return Applied::kNone;
  }

  MemberInfo& info = it->second;
  switch (claimed) {
    case MemberState::kAlive: {
      if (info.terminal) return Applied::kNone;
      if (info.state == MemberState::kFailed) {
        if (incarnation <= info.incarnation) return Applied::kNone;
        // A confirmed-failed node came back with a fresh incarnation.
        // Budget these returns: past max_rejoins the node is flapping
        // and alive claims are ignored forever.
        if (++info.rejoins > max_rejoins_) {
          info.terminal = true;
          return Applied::kNone;
        }
        info.state = MemberState::kAlive;
        info.incarnation = incarnation;
        return Applied::kReinstated;
      }
      // alive needs STRICTLY higher incarnation to beat suspect (the
      // tie-break that reserves refutation for the subject itself).
      if (incarnation <= info.incarnation) return Applied::kNone;
      const bool was_suspect = info.state == MemberState::kSuspect;
      info.state = MemberState::kAlive;
      info.incarnation = incarnation;
      return was_suspect ? Applied::kRefuted : Applied::kRefreshed;
    }
    case MemberState::kSuspect: {
      if (info.state == MemberState::kFailed) return Applied::kNone;
      if (info.state == MemberState::kAlive) {
        // suspect beats alive at EQUAL incarnation.
        if (incarnation < info.incarnation) return Applied::kNone;
        info.state = MemberState::kSuspect;
        info.incarnation = incarnation;
        return Applied::kSuspected;
      }
      // Already suspect: a higher incarnation just refreshes the rumor.
      if (incarnation <= info.incarnation) return Applied::kNone;
      info.incarnation = incarnation;
      return Applied::kRefreshed;
    }
    case MemberState::kFailed: {
      if (info.state == MemberState::kFailed) return Applied::kNone;
      // A confirmation is indisputable only for the incarnation it names.
      // Stale failed claims (below the node's current incarnation) predate
      // a refutation or rejoin and still circulate in retransmit queues;
      // letting them re-confirm would flap a reinstated node straight into
      // the terminal rejoin budget.
      if (incarnation < info.incarnation) return Applied::kNone;
      info.state = MemberState::kFailed;
      info.incarnation = std::max(info.incarnation, incarnation);
      return Applied::kConfirmed;
    }
  }
  return Applied::kNone;
}

void MemberTable::set_suspect_deadline(NodeId node,
                                       Clock::time_point deadline) {
  const auto it = members_.find(node);
  if (it == members_.end() || it->second.state != MemberState::kSuspect) {
    return;
  }
  it->second.suspect_deadline = deadline;
}

std::vector<NodeId> MemberTable::expired_suspects(
    Clock::time_point now) const {
  std::vector<NodeId> expired;
  for (const auto& [node, info] : members_) {
    if (info.state == MemberState::kSuspect && info.suspect_deadline <= now) {
      expired.push_back(node);
    }
  }
  std::sort(expired.begin(), expired.end());
  return expired;
}

bool MemberTable::contains(NodeId node) const {
  return members_.count(node) != 0;
}

MemberState MemberTable::state(NodeId node) const {
  const auto it = members_.find(node);
  return it != members_.end() ? it->second.state : MemberState::kFailed;
}

std::uint64_t MemberTable::incarnation(NodeId node) const {
  const auto it = members_.find(node);
  return it != members_.end() ? it->second.incarnation : 0;
}

bool MemberTable::is_terminal(NodeId node) const {
  const auto it = members_.find(node);
  return it != members_.end() && it->second.terminal;
}

std::uint32_t MemberTable::rejoins(NodeId node) const {
  const auto it = members_.find(node);
  return it != members_.end() ? it->second.rejoins : 0;
}

std::vector<NodeId> MemberTable::serving_members() const {
  std::vector<NodeId> serving;
  for (const auto& [node, info] : members_) {
    if (info.state != MemberState::kFailed) serving.push_back(node);
  }
  std::sort(serving.begin(), serving.end());
  return serving;
}

std::vector<NodeId> MemberTable::members() const {
  std::vector<NodeId> all;
  all.reserve(members_.size());
  for (const auto& [node, info] : members_) all.push_back(node);
  std::sort(all.begin(), all.end());
  return all;
}

std::size_t MemberTable::alive_count() const {
  std::size_t count = 0;
  for (const auto& [node, info] : members_) {
    if (info.state == MemberState::kAlive) ++count;
  }
  return count;
}

std::size_t MemberTable::suspect_count() const {
  std::size_t count = 0;
  for (const auto& [node, info] : members_) {
    if (info.state == MemberState::kSuspect) ++count;
  }
  return count;
}

std::size_t MemberTable::failed_count() const {
  std::size_t count = 0;
  for (const auto& [node, info] : members_) {
    if (info.state == MemberState::kFailed) ++count;
  }
  return count;
}

}  // namespace ftc::membership
