// scheduler.hpp - Periodic driver for the agents' SWIM protocol periods.
//
// One background thread ticks every registered agent once per period.
// Agents never self-schedule: keeping the clock external means tests can
// drive probe_tick() by hand for determinism, the threaded cluster gets
// real-time behaviour from this scheduler, and a future DES substrate can
// tick agents from simulated time — same protocol code in all three.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "membership/swim.hpp"

namespace ftc::membership {

class GossipScheduler {
 public:
  explicit GossipScheduler(std::chrono::milliseconds period);
  ~GossipScheduler();

  GossipScheduler(const GossipScheduler&) = delete;
  GossipScheduler& operator=(const GossipScheduler&) = delete;

  /// Registers an agent (not owned; must outlive the scheduler).
  /// Thread-safe; may be called while the scheduler is running (elastic
  /// scale-up adds the new node's agent to a live cluster).
  void add(MembershipAgent* agent);

  void start();
  /// Stops and joins the ticking thread; idempotent.
  void stop();
  [[nodiscard]] bool running() const;

  /// One synchronous round over all agents (the unit tests' manual
  /// clock; also used by start()'s thread).
  void tick_all();

  /// Completed rounds since start().
  [[nodiscard]] std::uint64_t ticks() const;

 private:
  void run();

  const std::chrono::milliseconds period_;
  std::vector<MembershipAgent*> agents_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace ftc::membership
