#include "membership/event.hpp"

#include <algorithm>

namespace ftc::membership {

const char* ring_event_type_name(RingEventType type) {
  switch (type) {
    case RingEventType::kJoin: return "join";
    case RingEventType::kProbation: return "probation";
    case RingEventType::kConfirmFailed: return "confirm_failed";
    case RingEventType::kReinstate: return "reinstate";
  }
  return "?";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void EventLog::append(const RingEvent& event) {
  events_.push_back(event);
  while (events_.size() > capacity_) {
    evicted_through_ = std::max(evicted_through_, events_.front().epoch);
    events_.pop_front();
  }
}

std::optional<std::vector<RingEvent>> EventLog::since(
    std::uint64_t since) const {
  // An evicted event with epoch > since means the delta has a hole.
  if (evicted_through_ > since) return std::nullopt;
  std::vector<RingEvent> delta;
  for (const RingEvent& event : events_) {
    if (event.epoch > since) delta.push_back(event);
  }
  return delta;
}

}  // namespace ftc::membership
