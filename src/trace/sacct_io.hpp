// sacct_io.hpp - CSV import/export for SLURM job records.
//
// A real deployment runs the Sec III analysis on actual accounting data:
// `sacct -P -o JobID,NNodes,ElapsedRaw,State` piped through a trivial awk
// produces the five-column CSV this module reads.  The synthetic generator
// exports the same format, so the analysis pipeline is identical for real
// and synthetic inputs.
//
// Format (header required):
//   job_id,week,node_count,elapsed_minutes,state
//   123,0,64,75.5,JOB_FAIL
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/slurm_record.hpp"

namespace ftc::trace {

/// Serializes records to CSV (with header).
std::string to_csv(const std::vector<SlurmJobRecord>& log);

/// Parses CSV produced by to_csv (or an equivalent sacct export).  Fails
/// with kInvalidArgument naming the line on any malformed row; unknown
/// state strings are rejected rather than guessed.
StatusOr<std::vector<SlurmJobRecord>> from_csv(const std::string& csv);

/// Writes/reads CSV files; thin wrappers over the string forms.
Status save_csv(const std::vector<SlurmJobRecord>& log,
                const std::string& path);
StatusOr<std::vector<SlurmJobRecord>> load_csv(const std::string& path);

/// Parses a state name ("JOB_FAIL", ...); false when unknown.
bool parse_job_state(const std::string& name, JobState& out);

}  // namespace ftc::trace
