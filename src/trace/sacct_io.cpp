#include "trace/sacct_io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.hpp"

namespace ftc::trace {

namespace {
constexpr const char* kHeader = "job_id,week,node_count,elapsed_minutes,state";
}  // namespace

std::string to_csv(const std::vector<SlurmJobRecord>& log) {
  std::string out = kHeader;
  out += "\n";
  for (const SlurmJobRecord& job : log) {
    out += std::to_string(job.job_id);
    out += ",";
    out += std::to_string(job.week);
    out += ",";
    out += std::to_string(job.node_count);
    out += ",";
    out += format_double(job.elapsed_minutes, 3);
    out += ",";
    out += job_state_name(job.state);
    out += "\n";
  }
  return out;
}

bool parse_job_state(const std::string& name, JobState& out) {
  for (const JobState state :
       {JobState::kCompleted, JobState::kJobFail, JobState::kTimeout,
        JobState::kNodeFail, JobState::kCancelled}) {
    if (name == job_state_name(state)) {
      out = state;
      return true;
    }
  }
  return false;
}

StatusOr<std::vector<SlurmJobRecord>> from_csv(const std::string& csv) {
  std::vector<SlurmJobRecord> log;
  std::istringstream in(csv);
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (!saw_header) {
      if (trimmed != kHeader) {
        return Status::invalid_argument(
            "line 1: expected header '" + std::string(kHeader) + "'");
      }
      saw_header = true;
      continue;
    }
    const auto fields = split(trimmed, ',');
    if (fields.size() != 5) {
      return Status::invalid_argument("line " + std::to_string(lineno) +
                                      ": expected 5 fields, got " +
                                      std::to_string(fields.size()));
    }
    SlurmJobRecord job;
    char* end = nullptr;
    job.job_id = std::strtoull(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str()) {
      return Status::invalid_argument("line " + std::to_string(lineno) +
                                      ": bad job_id '" + fields[0] + "'");
    }
    job.week = static_cast<std::uint32_t>(
        std::strtoul(fields[1].c_str(), &end, 10));
    if (end == fields[1].c_str()) {
      return Status::invalid_argument("line " + std::to_string(lineno) +
                                      ": bad week '" + fields[1] + "'");
    }
    job.node_count = static_cast<std::uint32_t>(
        std::strtoul(fields[2].c_str(), &end, 10));
    if (end == fields[2].c_str() || job.node_count == 0) {
      return Status::invalid_argument("line " + std::to_string(lineno) +
                                      ": bad node_count '" + fields[2] + "'");
    }
    job.elapsed_minutes = std::strtod(fields[3].c_str(), &end);
    if (end == fields[3].c_str() || job.elapsed_minutes < 0.0) {
      return Status::invalid_argument("line " + std::to_string(lineno) +
                                      ": bad elapsed_minutes '" + fields[3] +
                                      "'");
    }
    if (!parse_job_state(fields[4], job.state)) {
      return Status::invalid_argument("line " + std::to_string(lineno) +
                                      ": unknown state '" + fields[4] + "'");
    }
    log.push_back(job);
  }
  if (!saw_header) return Status::invalid_argument("empty input");
  return log;
}

Status save_csv(const std::vector<SlurmJobRecord>& log,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::not_found("cannot open for writing: " + path);
  out << to_csv(log);
  return out.good() ? Status::ok()
                    : Status::internal("write failed: " + path);
}

StatusOr<std::vector<SlurmJobRecord>> load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

}  // namespace ftc::trace
