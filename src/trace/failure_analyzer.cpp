#include "trace/failure_analyzer.hpp"

#include <algorithm>

namespace ftc::trace {

FailureAnalyzer::FailureAnalyzer(const std::vector<SlurmJobRecord>& log) {
  jobs_.reserve(log.size());
  for (const SlurmJobRecord& job : log) {
    if (job.state == JobState::kCancelled) {
      ++excluded_;
      continue;
    }
    jobs_.push_back(job);
  }
}

Table1Summary FailureAnalyzer::table1() const {
  Table1Summary summary;
  summary.total_jobs = jobs_.size();
  for (const SlurmJobRecord& job : jobs_) {
    switch (job.state) {
      case JobState::kJobFail: ++summary.job_fail; break;
      case JobState::kTimeout: ++summary.timeout; break;
      case JobState::kNodeFail: ++summary.node_fail; break;
      default: break;
    }
  }
  summary.total_failures =
      summary.job_fail + summary.timeout + summary.node_fail;
  return summary;
}

std::vector<WeeklyElapsedRow> FailureAnalyzer::weekly_elapsed(
    std::uint32_t weeks) const {
  struct Acc {
    double sum = 0.0;
    std::uint64_t n = 0;
    void add(double x) { sum += x; ++n; }
    [[nodiscard]] double mean() const { return n ? sum / n : 0.0; }
  };
  std::vector<std::array<Acc, 3>> per_type(weeks);  // job/timeout/node
  std::vector<Acc> overall(weeks);

  for (const SlurmJobRecord& job : jobs_) {
    if (!job.is_failure() || job.week >= weeks) continue;
    overall[job.week].add(job.elapsed_minutes);
    switch (job.state) {
      case JobState::kJobFail:
        per_type[job.week][0].add(job.elapsed_minutes);
        break;
      case JobState::kTimeout:
        per_type[job.week][1].add(job.elapsed_minutes);
        break;
      case JobState::kNodeFail:
        per_type[job.week][2].add(job.elapsed_minutes);
        break;
      default: break;
    }
  }

  std::vector<WeeklyElapsedRow> rows(weeks);
  for (std::uint32_t w = 0; w < weeks; ++w) {
    rows[w].week = w;
    rows[w].job_fail_mean = per_type[w][0].mean();
    rows[w].timeout_mean = per_type[w][1].mean();
    rows[w].node_fail_mean = per_type[w][2].mean();
    rows[w].overall_mean = overall[w].mean();
    rows[w].failed_jobs = overall[w].n;
  }
  return rows;
}

double FailureAnalyzer::overall_failure_elapsed_mean() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const SlurmJobRecord& job : jobs_) {
    if (job.is_failure()) {
      sum += job.elapsed_minutes;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

namespace {

std::vector<TypeShareRow> bucketize(
    const std::vector<SlurmJobRecord>& jobs,
    const std::vector<double>& edges,
    double (*key)(const SlurmJobRecord&)) {
  std::vector<TypeShareRow> rows;
  if (edges.size() < 2) return rows;
  rows.resize(edges.size() - 1);
  std::vector<std::array<std::uint64_t, 3>> counts(rows.size(), {0, 0, 0});

  for (const SlurmJobRecord& job : jobs) {
    if (!job.is_failure()) continue;
    const double k = key(job);
    if (k < edges.front() || k >= edges.back()) continue;
    const auto it = std::upper_bound(edges.begin(), edges.end(), k);
    const auto idx = static_cast<std::size_t>(it - edges.begin()) - 1;
    switch (job.state) {
      case JobState::kJobFail: ++counts[idx][0]; break;
      case JobState::kTimeout: ++counts[idx][1]; break;
      case JobState::kNodeFail: ++counts[idx][2]; break;
      default: break;
    }
  }

  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].bucket_low = edges[i];
    rows[i].bucket_high = edges[i + 1];
    const std::uint64_t total = counts[i][0] + counts[i][1] + counts[i][2];
    rows[i].failures = total;
    if (total > 0) {
      rows[i].job_fail_share = static_cast<double>(counts[i][0]) / total;
      rows[i].timeout_share = static_cast<double>(counts[i][1]) / total;
      rows[i].node_fail_share = static_cast<double>(counts[i][2]) / total;
    }
  }
  return rows;
}

}  // namespace

std::vector<TypeShareRow> FailureAnalyzer::by_node_count(
    const std::vector<double>& edges) const {
  return bucketize(jobs_, edges, [](const SlurmJobRecord& job) {
    return static_cast<double>(job.node_count);
  });
}

std::vector<TypeShareRow> FailureAnalyzer::by_elapsed(
    const std::vector<double>& edges) const {
  return bucketize(jobs_, edges, [](const SlurmJobRecord& job) {
    return job.elapsed_minutes;
  });
}

std::vector<double> default_node_count_edges() {
  // Six equal 1,550-node ranges; the paper highlights 7,750-9,300.
  return {1, 1550, 3100, 4650, 6200, 7750, 9409};
}

std::vector<double> default_elapsed_edges() {
  return {0, 30, 60, 120, 240, 480, 1e9};
}

}  // namespace ftc::trace
