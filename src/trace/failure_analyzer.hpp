// failure_analyzer.hpp - The paper's Sec III analysis over a SLURM log.
//
// Computes Table I (failure counts and ratios), Figure 1 (average elapsed
// minutes of failed jobs per week, per type, plus the overall mean), and
// Figure 2 (failure-type distribution by node-count bucket and by
// elapsed-time bucket).  Cancelled jobs are excluded exactly as the paper
// describes.  Pure functions over records: run it on the synthetic log or
// on a real sacct export with the same field mapping.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/slurm_record.hpp"

namespace ftc::trace {

struct Table1Summary {
  std::uint64_t total_jobs = 0;      ///< analyzed jobs (cancels excluded)
  std::uint64_t total_failures = 0;
  std::uint64_t job_fail = 0;
  std::uint64_t timeout = 0;
  std::uint64_t node_fail = 0;

  [[nodiscard]] double failure_ratio() const {
    return total_jobs ? static_cast<double>(total_failures) / total_jobs : 0;
  }
  [[nodiscard]] double share_of_failures(std::uint64_t count) const {
    return total_failures ? static_cast<double>(count) / total_failures : 0;
  }
  /// Paper's "node failures" = Node Fail + Timeout (Sec III).
  [[nodiscard]] double node_failure_class_share() const {
    return share_of_failures(timeout + node_fail);
  }
};

struct WeeklyElapsedRow {
  std::uint32_t week = 0;
  double job_fail_mean = 0.0;   ///< 0 when no such failure that week
  double timeout_mean = 0.0;
  double node_fail_mean = 0.0;
  double overall_mean = 0.0;    ///< over all failed jobs of the week
  std::uint64_t failed_jobs = 0;
};

struct TypeShareRow {
  double bucket_low = 0.0;
  double bucket_high = 0.0;
  std::uint64_t failures = 0;
  double job_fail_share = 0.0;
  double timeout_share = 0.0;
  double node_fail_share = 0.0;
};

class FailureAnalyzer {
 public:
  /// Cancelled jobs are dropped at construction (the paper's filter).
  explicit FailureAnalyzer(const std::vector<SlurmJobRecord>& log);

  [[nodiscard]] Table1Summary table1() const;

  /// Figure 1: one row per week in [0, weeks).
  [[nodiscard]] std::vector<WeeklyElapsedRow> weekly_elapsed(
      std::uint32_t weeks) const;

  /// Overall mean elapsed minutes across all failed jobs (Fig 1 red line).
  [[nodiscard]] double overall_failure_elapsed_mean() const;

  /// Figure 2(a): type shares per node-count bucket; `edges` ascending,
  /// bucket i = [edges[i], edges[i+1]).
  [[nodiscard]] std::vector<TypeShareRow> by_node_count(
      const std::vector<double>& edges) const;

  /// Figure 2(b): type shares per elapsed-minutes bucket.
  [[nodiscard]] std::vector<TypeShareRow> by_elapsed(
      const std::vector<double>& edges) const;

  [[nodiscard]] std::size_t analyzed_jobs() const { return jobs_.size(); }
  [[nodiscard]] std::size_t excluded_jobs() const { return excluded_; }

 private:
  std::vector<SlurmJobRecord> jobs_;  ///< cancels removed
  std::size_t excluded_ = 0;
};

/// The node-count bucket edges used by the paper's Figure 2(a) (six equal
/// ranges up to Frontier's 9,408 nodes; the top bucket is 7,750-9,300+).
std::vector<double> default_node_count_edges();

/// Elapsed-minutes bucket edges for Figure 2(b).
std::vector<double> default_elapsed_edges();

}  // namespace ftc::trace
