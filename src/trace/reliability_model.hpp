// reliability_model.hpp - Quantitative backing for Sec III's motivation.
//
// Fits a per-node-hour failure rate to a SLURM log and answers the
// questions the paper's introduction raises: how likely is a job of N
// nodes x T hours to hit a node failure, how much work is lost without
// fault tolerance, and how much runtime restart-from-scratch costs
// compared to an FT-cache job that continues on N-1 nodes.
//
// Model: node failures arrive as a Poisson process with rate λ per
// node-hour (exponential lifetimes, independent nodes) — the standard
// first-order model for large-fleet hardware failures and consistent with
// Fig 2(b)'s observation that failure type is insensitive to elapsed time.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/slurm_record.hpp"

namespace ftc::trace {

struct ReliabilityEstimate {
  /// Node-failure-class events observed (Node Fail + Timeout, Sec III).
  std::uint64_t node_failure_events = 0;
  /// Total node-hours the log covers (all analyzed jobs).
  double node_hours = 0.0;
  /// Fitted rate: events / node-hours.
  double lambda_per_node_hour = 0.0;
  /// Mean time between node failures for a given allocation size.
  [[nodiscard]] double mtbf_hours(std::uint32_t nodes) const {
    return (lambda_per_node_hour > 0.0 && nodes > 0)
               ? 1.0 / (lambda_per_node_hour * nodes)
               : 0.0;
  }
};

/// Fits λ from a log (cancelled jobs excluded).
ReliabilityEstimate estimate_failure_rate(
    const std::vector<SlurmJobRecord>& log);

/// P(at least one node failure during a run of `nodes` x `hours`).
double job_failure_probability(double lambda_per_node_hour,
                               std::uint32_t nodes, double hours);

/// Expected wall-clock to finish `hours` of work on `nodes` when every
/// node failure restarts the job from scratch (no checkpoint, the NoFT
/// fate): E[T] = (e^{λ n T} - 1) / (λ n).
double expected_runtime_with_restarts(double lambda_per_node_hour,
                                      std::uint32_t nodes, double hours);

/// Expected wall-clock with elastic fault tolerance: failures cost only a
/// rollback to the epoch start plus the shrunken allocation.  `epochs`
/// partitions the work; each failure wastes on average half an epoch and
/// the job continues on one fewer node (linear-speedup assumption).
double expected_runtime_with_elastic_ft(double lambda_per_node_hour,
                                        std::uint32_t nodes, double hours,
                                        std::uint32_t epochs);

/// Node-hours actually lost to failed jobs in a log (what the Frontier
/// analysis calls "significant losses in computational resources").
double lost_node_hours(const std::vector<SlurmJobRecord>& log);

}  // namespace ftc::trace
