// slurm_record.hpp - Minimal SLURM accounting record for failure analysis.
//
// The paper analyzes six months of Frontier sacct data (Sec III).  The raw
// logs are not public, so the trace module generates synthetic records
// whose aggregate statistics are calibrated to the published Table I and
// runs the same analysis the paper ran.  This struct holds the fields the
// analysis needs.
#pragma once

#include <cstdint>
#include <string>

namespace ftc::trace {

enum class JobState : std::uint8_t {
  kCompleted = 0,
  kJobFail = 1,    ///< code/data/environment errors
  kTimeout = 2,    ///< exceeded its limit (paper: treated as node failure —
                   ///< primarily network timeouts)
  kNodeFail = 3,   ///< hardware/network/software node death
  kCancelled = 4,  ///< user/admin cancel — EXCLUDED from the analysis
};

const char* job_state_name(JobState state);

struct SlurmJobRecord {
  std::uint64_t job_id = 0;
  /// Week index since production launch (the study covers 27 weeks).
  std::uint32_t week = 0;
  std::uint32_t node_count = 1;
  double elapsed_minutes = 0.0;
  JobState state = JobState::kCompleted;

  [[nodiscard]] bool is_failure() const {
    return state == JobState::kJobFail || state == JobState::kTimeout ||
           state == JobState::kNodeFail;
  }
  /// The paper folds TIMEOUT into node failures (Sec III).
  [[nodiscard]] bool is_node_failure_class() const {
    return state == JobState::kTimeout || state == JobState::kNodeFail;
  }
};

}  // namespace ftc::trace
