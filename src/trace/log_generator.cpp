#include "trace/log_generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace ftc::trace {
namespace {

/// Log-uniform node count in [1, hi], optionally mixed with a heavy
/// large-allocation component (weight `big_weight`) — node failures skew
/// toward big jobs because more hardware is exposed (Fig 2a).
std::uint32_t sample_node_count(Rng& rng, std::uint32_t hi,
                                double big_weight) {
  const double u = rng.uniform();
  double value;
  if (rng.uniform() < big_weight) {
    // Large-allocation component: uniform over the top fifth of the
    // machine (capability jobs).
    value = static_cast<double>(hi) * (0.8 + 0.2 * u);
  } else {
    // Log-uniform bulk: most jobs are small.
    value = std::exp(u * std::log(static_cast<double>(hi)));
  }
  const auto n = static_cast<std::uint32_t>(value);
  return std::min(std::max<std::uint32_t>(n, 1), hi);
}

/// Elapsed-minutes sample for a failure of the given type in `week`.
/// Lognormal body centred on the target mean, with seeded week spikes on
/// the Timeout/NodeFail series (Fig 1 shows 2-3 hour weeks).
double sample_elapsed(Rng& rng, JobState state, std::uint32_t week,
                      double mean_minutes, Rng& week_noise_source) {
  // Per-(week, type) multiplier derived deterministically so all jobs in a
  // week share the spike.
  Rng week_rng = week_noise_source.fork(
      (static_cast<std::uint64_t>(week) << 8) |
      static_cast<std::uint64_t>(state));
  double week_factor = 0.75 + 0.5 * week_rng.uniform();
  if ((state == JobState::kTimeout || state == JobState::kNodeFail) &&
      week_rng.chance(0.15)) {
    week_factor *= week_rng.uniform(1.8, 2.6);  // spike weeks
  }
  // Lognormal with sigma 0.8; mu set so the mean is mean_minutes.
  const double sigma = 0.8;
  const double mu = std::log(mean_minutes) - sigma * sigma / 2.0;
  const double body = rng.lognormal(mu, sigma);
  return std::max(1.0, body * week_factor);
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kCompleted: return "COMPLETED";
    case JobState::kJobFail: return "JOB_FAIL";
    case JobState::kTimeout: return "TIMEOUT";
    case JobState::kNodeFail: return "NODE_FAIL";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

std::vector<SlurmJobRecord> generate_log(const LogGeneratorParams& params) {
  std::vector<SlurmJobRecord> log;
  Rng rng(params.seed);
  Rng week_noise = rng.fork(0x33EEuLL);

  const auto cancelled_count = static_cast<std::uint64_t>(
      params.cancelled_fraction * params.total_jobs);
  log.reserve(params.total_jobs + cancelled_count);

  std::uint64_t next_id = 1;
  for (std::uint32_t i = 0; i < params.total_jobs; ++i) {
    SlurmJobRecord job;
    job.job_id = next_id++;
    job.week = static_cast<std::uint32_t>(rng.below(params.weeks));

    if (rng.uniform() < params.failure_ratio) {
      // Failure type from the exact Table I mix, then node count
      // conditional on type (this direction of conditioning pins the
      // aggregate shares while shaping Fig 2a).
      const double t = rng.uniform() *
                       (params.job_fail_share + params.timeout_share +
                        params.node_fail_share);
      // Large-allocation component weights calibrated so the top node
      // bucket's type mix lands near the paper's Fig 2(a): Node Fail
      // 46.04% and Node Fail + Timeout 78.60% in the 7,750-9,300 range.
      double big_weight;
      if (t < params.job_fail_share) {
        job.state = JobState::kJobFail;
        big_weight = 0.003;  // code bugs strike mostly small/medium jobs
      } else if (t < params.job_fail_share + params.timeout_share) {
        job.state = JobState::kTimeout;
        big_weight = 0.018;
      } else {
        job.state = JobState::kNodeFail;
        big_weight = 0.92;  // hardware exposure grows with allocation size
      }
      job.node_count = sample_node_count(rng, params.max_nodes, big_weight);
      job.elapsed_minutes =
          sample_elapsed(rng, job.state, job.week,
                         params.mean_failure_elapsed_minutes, week_noise);
    } else {
      job.state = JobState::kCompleted;
      job.node_count = sample_node_count(rng, params.max_nodes, 0.02);
      job.elapsed_minutes = std::max(
          1.0, rng.lognormal(std::log(120.0) - 0.32, 0.8));
    }
    log.push_back(job);
  }

  // Cancelled jobs on top — the analyzer must filter these out.
  for (std::uint64_t i = 0; i < cancelled_count; ++i) {
    SlurmJobRecord job;
    job.job_id = next_id++;
    job.week = static_cast<std::uint32_t>(rng.below(params.weeks));
    job.state = JobState::kCancelled;
    job.node_count = sample_node_count(rng, params.max_nodes, 0.02);
    job.elapsed_minutes = std::max(1.0, rng.exponential(30.0));
    log.push_back(job);
  }
  return log;
}

}  // namespace ftc::trace
