#include "trace/reliability_model.hpp"

#include <cmath>

namespace ftc::trace {

ReliabilityEstimate estimate_failure_rate(
    const std::vector<SlurmJobRecord>& log) {
  ReliabilityEstimate estimate;
  for (const SlurmJobRecord& job : log) {
    if (job.state == JobState::kCancelled) continue;
    estimate.node_hours += job.node_count * job.elapsed_minutes / 60.0;
    if (job.is_node_failure_class()) ++estimate.node_failure_events;
  }
  if (estimate.node_hours > 0.0) {
    estimate.lambda_per_node_hour =
        static_cast<double>(estimate.node_failure_events) /
        estimate.node_hours;
  }
  return estimate;
}

double job_failure_probability(double lambda_per_node_hour,
                               std::uint32_t nodes, double hours) {
  if (lambda_per_node_hour <= 0.0 || nodes == 0 || hours <= 0.0) return 0.0;
  return 1.0 - std::exp(-lambda_per_node_hour * nodes * hours);
}

double expected_runtime_with_restarts(double lambda_per_node_hour,
                                      std::uint32_t nodes, double hours) {
  if (hours <= 0.0) return 0.0;
  const double rate = lambda_per_node_hour * nodes;
  if (rate <= 0.0) return hours;
  // Classic renewal result for restart-from-scratch under exponential
  // failures (no checkpointing): E[T] = (e^{rate*T} - 1) / rate.
  return std::expm1(rate * hours) / rate;
}

double expected_runtime_with_elastic_ft(double lambda_per_node_hour,
                                        std::uint32_t nodes, double hours,
                                        std::uint32_t epochs) {
  if (hours <= 0.0 || nodes == 0) return 0.0;
  if (epochs == 0) epochs = 1;
  // First-order accounting: expected failures k = λ n T; each failure
  // wastes half an epoch of wall-clock and removes one node, stretching
  // the remaining work by n/(n-1) (linear-speedup assumption).  Valid for
  // k << n, the regime of interest.
  const double rate = lambda_per_node_hour * nodes;
  if (rate <= 0.0) return hours;
  const double expected_failures = rate * hours;
  const double epoch_hours = hours / epochs;
  double time = hours;
  double remaining_nodes = nodes;
  for (double k = 0; k < expected_failures && remaining_nodes > 1.0; ++k) {
    time += 0.5 * epoch_hours;                 // rollback waste
    time += hours / (remaining_nodes - 1.0) -  // slower remaining work
            hours / remaining_nodes;
    remaining_nodes -= 1.0;
  }
  // Fractional tail of the expected failure count.
  const double frac = expected_failures - std::floor(expected_failures);
  if (remaining_nodes > 1.0) {
    time += frac * (0.5 * epoch_hours +
                    hours / (remaining_nodes - 1.0) -
                    hours / remaining_nodes);
  }
  return time;
}

double lost_node_hours(const std::vector<SlurmJobRecord>& log) {
  double lost = 0.0;
  for (const SlurmJobRecord& job : log) {
    if (job.is_failure()) {
      lost += job.node_count * job.elapsed_minutes / 60.0;
    }
  }
  return lost;
}

}  // namespace ftc::trace
