// log_generator.hpp - Synthetic Frontier-like SLURM log.
//
// Generates a job population whose aggregates reproduce the published
// Table I exactly in expectation (failure ratio 25.04%; failure mix
// 52.50% Job Fail / 44.92% Timeout / 2.58% Node Fail) and whose
// conditional structure reproduces the paper's Figures 1-2:
//   - node-failure-type share grows with node count (Fig 2a: 46.04% Node
//     Fail in the 7,750-9,300 range) — achieved by sampling node counts
//     conditional on failure type;
//   - elapsed time before failure averages ~75 minutes with
//     week-to-week spikes of 2-3 hours for Timeout/Node Fail (Fig 1);
//   - elapsed-time buckets show near-constant type ratios (Fig 2b).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/slurm_record.hpp"

namespace ftc::trace {

struct LogGeneratorParams {
  /// Analyzed job count (paper: 181,933 over six months).  Shrink for
  /// tests; ratios are scale-free.
  std::uint32_t total_jobs = 181933;
  std::uint32_t weeks = 27;
  std::uint32_t max_nodes = 9408;  ///< Frontier node count

  // Target aggregates (Table I).
  double failure_ratio = 0.2504;
  double job_fail_share = 0.5250;   ///< of failures
  double timeout_share = 0.4492;    ///< of failures
  double node_fail_share = 0.0258;  ///< of failures

  /// Cancelled jobs generated ON TOP of total_jobs; the analyzer must
  /// exclude them (exercises the paper's filtering step).
  double cancelled_fraction = 0.08;

  /// Mean elapsed time of failed jobs (paper: ~75 minutes).
  double mean_failure_elapsed_minutes = 75.0;

  std::uint64_t seed = 20240101;
};

/// Generates the log; records are in arbitrary order with unique job ids.
std::vector<SlurmJobRecord> generate_log(const LogGeneratorParams& params);

}  // namespace ftc::trace
