// placement.hpp - Data-placement strategy interface.
//
// A placement strategy answers one question — "which cache server owns this
// file path?" — under a changing set of alive nodes.  The paper's core
// contribution (Sec IV-B) is the hash-ring strategy; Sec IV-B also
// discusses three alternatives it rejects (static modulo, multiple hash
// functions, range partitioning), all implemented here behind this
// interface so the movement/ablation experiments can compare them under
// identical failures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace ftc::ring {

/// Alias of the library-wide node identifier (see common/types.hpp).
using NodeId = ftc::NodeId;

/// Sentinel for "no owner" (empty membership).
constexpr NodeId kInvalidNode = ftc::kInvalidNode;

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  /// Strategy name for reports ("hash_ring", "static_modulo", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Owner of `key` among currently-alive nodes; kInvalidNode when no node
  /// is alive.  Must be deterministic and side-effect free.
  [[nodiscard]] virtual NodeId owner(std::string_view key) const = 0;

  /// Adds a node to the membership.  Adding an existing node is a no-op.
  virtual void add_node(NodeId node) = 0;

  /// Removes a (failed) node.  Removing an unknown node is a no-op.
  virtual void remove_node(NodeId node) = 0;

  [[nodiscard]] virtual bool contains(NodeId node) const = 0;

  /// Alive membership in ascending NodeId order.
  [[nodiscard]] virtual std::vector<NodeId> nodes() const = 0;

  [[nodiscard]] virtual std::size_t node_count() const = 0;

  /// Deep copy — movement analysis mutates a clone, never the original.
  [[nodiscard]] virtual std::unique_ptr<PlacementStrategy> clone() const = 0;
};

/// Which of the four strategies to construct.
enum class StrategyKind {
  kHashRing,
  kStaticModulo,
  kMultiHash,
  kRangePartition,
};

const char* strategy_kind_name(StrategyKind kind);

/// Factory: builds a strategy of `kind` with nodes {0..node_count-1}.
/// `vnodes_per_node` only affects the hash ring (the paper's production
/// value is 100).
std::unique_ptr<PlacementStrategy> make_strategy(StrategyKind kind,
                                                 std::uint32_t node_count,
                                                 std::uint32_t vnodes_per_node);

}  // namespace ftc::ring
