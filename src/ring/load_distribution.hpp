// load_distribution.hpp - Fig 6(b) post-failure load-redistribution study.
//
// Mirrors the artifact's load_distribution_simul.cpp: N physical nodes on a
// hash ring with V virtual nodes each; one node fails; measure how many
// surviving nodes receive the failed node's files and how many files each
// receiver gets, averaged over many randomized trials (the paper runs 500
// trials on 1024 physical nodes and sweeps V from 10 to 1000).
//
// The implementation avoids per-file owner lookups: for each of the failed
// node's V ring arcs it counts, by binary search over the sorted file-hash
// population, the files falling in that arc and assigns them to the arc's
// clockwise successor (first virtual position of a surviving node).  One
// trial costs O(V log F) instead of O(F log(V N)).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"

namespace ftc::ring {

struct LoadDistributionParams {
  std::uint32_t physical_nodes = 1024;
  std::uint32_t vnodes_per_node = 100;
  /// Number of files in the cached dataset.  Default is the cosmoUniverse
  /// validation-set size; the paper's conclusions are ratio-based and hold
  /// for any population large relative to the node count.
  std::uint64_t file_count = 65536;
  std::uint32_t trials = 500;
  std::uint64_t seed = 42;
  /// When > 1, each trial additionally models the FULL population's
  /// per-node load on the post-failure ring twice — plain clockwise
  /// assignment vs bounded-load spill at overload factor c (a key moves
  /// to the next distinct surviving owner when its primary's accumulated
  /// load already exceeds c x file_count / survivors) — filling the
  /// peak_to_mean_* stats.  0 (default) skips the comparison: it walks
  /// every arc, not just the failed node's, so it multiplies trial cost
  /// by ~physical_nodes.
  double bounded_load_c = 0.0;
  /// Distinct spill candidates past the primary for the bounded model.
  std::uint32_t bounded_load_max_spill = 2;
};

struct LoadDistributionResult {
  LoadDistributionParams params;
  /// Distinct surviving nodes that received >= 1 redistributed file
  /// (per-trial samples -> mean/stddev).  Fig 6(b) left axis.
  RunningStats receiver_nodes;
  /// Mean files received per receiver node, per trial.  Fig 6(b) right axis.
  RunningStats files_per_receiver;
  /// Files lost by the failed node per trial (~ file_count / physical_nodes).
  RunningStats lost_files;
  /// Jain fairness across receivers' received-file counts, per trial.
  RunningStats receiver_fairness;
  /// Largest single receiver's file count, per trial (hot-spot indicator).
  RunningStats max_files_one_receiver;
  /// p99 of receivers' file counts, per trial (tail of the same
  /// distribution max_files_one_receiver is the extreme of).
  RunningStats p99_files_one_receiver;
  /// Peak/mean of the full population's per-node load on the post-failure
  /// ring: plain clockwise assignment vs bounded-load spill at factor c.
  /// Empty unless params.bounded_load_c > 1.
  RunningStats peak_to_mean_plain;
  RunningStats peak_to_mean_bounded;
  /// Fraction of files the bounded model spilled past their primary.
  RunningStats bounded_spill_fraction;
};

/// Runs the full multi-trial simulation for one parameter point.
LoadDistributionResult run_load_distribution(const LoadDistributionParams& params);

/// Runs the Fig 6(b) sweep: one result per virtual-node count.
std::vector<LoadDistributionResult> run_load_distribution_sweep(
    const LoadDistributionParams& base,
    const std::vector<std::uint32_t>& vnode_counts);

}  // namespace ftc::ring
