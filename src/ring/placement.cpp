#include "ring/placement.hpp"

#include "ring/consistent_hash_ring.hpp"
#include "ring/multi_hash.hpp"
#include "ring/range_partition.hpp"
#include "ring/static_modulo.hpp"

namespace ftc::ring {

const char* strategy_kind_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kHashRing: return "hash_ring";
    case StrategyKind::kStaticModulo: return "static_modulo";
    case StrategyKind::kMultiHash: return "multi_hash";
    case StrategyKind::kRangePartition: return "range_partition";
  }
  return "?";
}

std::unique_ptr<PlacementStrategy> make_strategy(
    StrategyKind kind, std::uint32_t node_count,
    std::uint32_t vnodes_per_node) {
  switch (kind) {
    case StrategyKind::kHashRing: {
      RingConfig config;
      config.vnodes_per_node = vnodes_per_node;
      return std::make_unique<ConsistentHashRing>(node_count, config);
    }
    case StrategyKind::kStaticModulo:
      return std::make_unique<StaticModuloPlacement>(
          node_count, hash::Algorithm::kFnv1a64);
    case StrategyKind::kMultiHash:
      return std::make_unique<MultiHashPlacement>(
          node_count, hash::Algorithm::kMurmur3_64);
    case StrategyKind::kRangePartition:
      return std::make_unique<RangePartitionPlacement>(
          node_count, hash::Algorithm::kMurmur3_64);
  }
  return nullptr;
}

}  // namespace ftc::ring
