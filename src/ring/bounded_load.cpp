#include "ring/bounded_load.hpp"

namespace ftc::ring {

NodeLoadEstimator::NodeLoadEstimator(double alpha) : alpha_(alpha) {
  if (alpha_ <= 0.0) alpha_ = 0.3;
  if (alpha_ > 1.0) alpha_ = 1.0;
}

void NodeLoadEstimator::observe(NodeId node, double load) {
  if (load < 0.0) load = 0.0;
  const auto it = loads_.find(node);
  if (it == loads_.end()) {
    // First sample seeds the estimate directly (an EWMA started at zero
    // would underestimate a hot node for many samples).
    loads_.emplace(node, load);
    sum_ += load;
    return;
  }
  const double updated = it->second + alpha_ * (load - it->second);
  sum_ += updated - it->second;
  it->second = updated;
}

void NodeLoadEstimator::forget(NodeId node) {
  const auto it = loads_.find(node);
  if (it == loads_.end()) return;
  sum_ -= it->second;
  loads_.erase(it);
}

double NodeLoadEstimator::load(NodeId node) const {
  const auto it = loads_.find(node);
  return it == loads_.end() ? 0.0 : it->second;
}

double NodeLoadEstimator::mean_load() const {
  if (loads_.empty()) return 0.0;
  const double mean = sum_ / static_cast<double>(loads_.size());
  return mean < 0.0 ? 0.0 : mean;
}

bool NodeLoadEstimator::overloaded(NodeId node, double c) const {
  if (loads_.size() < 2) return false;
  const double mean = mean_load();
  // A near-idle fleet has nothing worth spilling over: tiny absolute
  // differences around zero must not flip the predicate.
  constexpr double kMinMean = 1e-6;
  if (mean <= kMinMean) return false;
  return load(node) > c * mean;
}

void NodeLoadEstimator::clear() {
  loads_.clear();
  sum_ = 0.0;
}

}  // namespace ftc::ring
