#include "ring/movement_analysis.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace ftc::ring {

std::vector<std::string> make_key_population(std::size_t count,
                                             const std::string& prefix) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(prefix + "/file_" + zero_pad(i, 7) + ".tfrecord");
  }
  return keys;
}

std::vector<NodeId> assign_all(const PlacementStrategy& strategy,
                               const std::vector<std::string>& keys) {
  std::vector<NodeId> owners;
  owners.reserve(keys.size());
  for (const std::string& key : keys) owners.push_back(strategy.owner(key));
  return owners;
}

namespace {

MovementReport diff_assignments(const std::vector<NodeId>& before,
                                const std::vector<NodeId>& after,
                                const std::vector<NodeId>& departed) {
  MovementReport report;
  report.total_keys = before.size();
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] == after[i]) continue;
    ++report.moved_keys;
    const bool owner_died =
        std::find(departed.begin(), departed.end(), before[i]) !=
        departed.end();
    if (owner_died) {
      ++report.lost_keys;
    } else {
      ++report.gratuitous_moves;
    }
    if (after[i] != kInvalidNode) ++report.received_by_node[after[i]];
  }
  return report;
}

}  // namespace

MovementReport analyze_removal(const PlacementStrategy& strategy,
                               const std::vector<std::string>& keys,
                               const std::vector<NodeId>& failed_nodes) {
  const std::vector<NodeId> before = assign_all(strategy, keys);
  const std::unique_ptr<PlacementStrategy> mutated = strategy.clone();
  for (NodeId n : failed_nodes) mutated->remove_node(n);
  const std::vector<NodeId> after = assign_all(*mutated, keys);
  return diff_assignments(before, after, failed_nodes);
}

MovementReport analyze_addition(const PlacementStrategy& strategy,
                                const std::vector<std::string>& keys,
                                const std::vector<NodeId>& new_nodes) {
  const std::vector<NodeId> before = assign_all(strategy, keys);
  const std::unique_ptr<PlacementStrategy> mutated = strategy.clone();
  for (NodeId n : new_nodes) mutated->add_node(n);
  const std::vector<NodeId> after = assign_all(*mutated, keys);
  // No node departed, so every move is "gratuitous" relative to failure
  // accounting; lost_keys stays 0.
  return diff_assignments(before, after, {});
}

}  // namespace ftc::ring
