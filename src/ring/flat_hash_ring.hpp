// flat_hash_ring.hpp - Sorted-vector consistent-hash ring.
//
// The paper implements the ring with std::map and leans on its
// "logarithmic time complexity".  A sorted vector has the same asymptotic
// lookup cost but far better constants (contiguous memory, no pointer
// chasing) at the price of O(V*N) rebuild on membership change.  Since
// failures are rare events and lookups happen on every read, this is the
// classic read-optimized point in the design space; the microbenchmark
// quantifies the gap.  Behaviour is bit-identical to ConsistentHashRing
// (same position derivation, same collision probing) — the oracle test
// asserts agreement.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "ring/consistent_hash_ring.hpp"
#include "ring/placement.hpp"

namespace ftc::ring {

class FlatHashRing final : public PlacementStrategy {
 public:
  explicit FlatHashRing(RingConfig config = {});
  FlatHashRing(std::uint32_t node_count, RingConfig config);

  [[nodiscard]] std::string_view name() const override {
    return "flat_hash_ring";
  }
  [[nodiscard]] NodeId owner(std::string_view key) const override;
  void add_node(NodeId node) override;
  void remove_node(NodeId node) override;
  [[nodiscard]] bool contains(NodeId node) const override;
  [[nodiscard]] std::vector<NodeId> nodes() const override;
  [[nodiscard]] std::size_t node_count() const override {
    return members_.size();
  }
  [[nodiscard]] std::unique_ptr<PlacementStrategy> clone() const override;

  [[nodiscard]] NodeId owner_of_hash(std::uint64_t key_hash) const;
  [[nodiscard]] std::uint64_t key_position(std::string_view key) const;
  [[nodiscard]] std::size_t position_count() const {
    return positions_.size();
  }
  [[nodiscard]] const RingConfig& config() const { return config_; }

 private:
  struct Entry {
    std::uint64_t position;
    NodeId node;
    bool operator<(const Entry& other) const {
      return position < other.position;
    }
  };

  /// Regenerates the sorted position table from `members_`.
  void rebuild();

  RingConfig config_;
  std::vector<NodeId> members_;   ///< ascending
  std::vector<Entry> positions_;  ///< ascending by position
};

}  // namespace ftc::ring
