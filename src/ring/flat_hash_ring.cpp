#include "ring/flat_hash_ring.hpp"

#include <algorithm>

#include "hash/murmur3.hpp"

namespace ftc::ring {

FlatHashRing::FlatHashRing(RingConfig config) : config_(config) {
  if (config_.vnodes_per_node == 0) config_.vnodes_per_node = 1;
}

FlatHashRing::FlatHashRing(std::uint32_t node_count, RingConfig config)
    : FlatHashRing(config) {
  members_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) members_.push_back(n);
  rebuild();
}

void FlatHashRing::rebuild() {
  positions_.clear();
  positions_.reserve(members_.size() * config_.vnodes_per_node);
  // Identical derivation to ConsistentHashRing::vnode_position.
  const std::uint64_t mixed_seed =
      hash::fmix64(config_.seed + 0x9E3779B97F4A7C15ULL);
  for (const NodeId node : members_) {
    for (std::uint32_t r = 0; r < config_.vnodes_per_node; ++r) {
      const std::uint64_t packed =
          (static_cast<std::uint64_t>(node) << 32) | r;
      positions_.push_back(Entry{hash::fmix64(packed ^ mixed_seed), node});
    }
  }
  std::sort(positions_.begin(), positions_.end());
  // Collision probing matches the map ring: later (greater (pos, node)
  // insertion order) duplicates shift to the next free slot.  With 64-bit
  // positions, duplicates are astronomically rare; handle them anyway by
  // bumping equal positions.
  for (std::size_t i = 1; i < positions_.size(); ++i) {
    if (positions_[i].position == positions_[i - 1].position) {
      ++positions_[i].position;
      // Keep sortedness if the bump overtakes the next entry.
      std::size_t j = i;
      while (j + 1 < positions_.size() &&
             positions_[j + 1] < positions_[j]) {
        std::swap(positions_[j], positions_[j + 1]);
        ++j;
      }
    }
  }
}

std::uint64_t FlatHashRing::key_position(std::string_view key) const {
  return hash::hash_key(config_.algorithm, key, config_.seed);
}

NodeId FlatHashRing::owner_of_hash(std::uint64_t key_hash) const {
  if (positions_.empty()) return kInvalidNode;
  const auto it = std::lower_bound(
      positions_.begin(), positions_.end(), key_hash,
      [](const Entry& entry, std::uint64_t value) {
        return entry.position < value;
      });
  return it != positions_.end() ? it->node : positions_.front().node;
}

NodeId FlatHashRing::owner(std::string_view key) const {
  return owner_of_hash(key_position(key));
}

void FlatHashRing::add_node(NodeId node) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it != members_.end() && *it == node) return;
  members_.insert(it, node);
  rebuild();
}

void FlatHashRing::remove_node(NodeId node) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it == members_.end() || *it != node) return;
  members_.erase(it);
  rebuild();
}

bool FlatHashRing::contains(NodeId node) const {
  return std::binary_search(members_.begin(), members_.end(), node);
}

std::vector<NodeId> FlatHashRing::nodes() const { return members_; }

std::unique_ptr<PlacementStrategy> FlatHashRing::clone() const {
  return std::make_unique<FlatHashRing>(*this);
}

}  // namespace ftc::ring
