// consistent_hash_ring.hpp - The paper's core contribution (Sec IV-B).
//
// Consistent hashing on a 64-bit circle: every physical node is inserted at
// V virtual positions; a key is owned by the first virtual node clockwise
// from the key's hash.  The ring is a std::map<u64, NodeId> exactly as the
// paper describes ("We implemented Hash ring with the std::map class from
// C++ STL"); lower_bound gives the clockwise successor in O(log(V*N)).
//
// Failure handling: remove_node erases only the failed node's V positions.
// Every key previously owned by the failed node falls to the next clockwise
// virtual node — the theoretical minimum reassignment — while all other
// keys keep their owners (the property the movement-analysis tests assert).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hash/hash.hpp"
#include "ring/placement.hpp"

namespace ftc::ring {

struct RingConfig {
  /// Virtual nodes per physical node.  The paper sweeps 10..1000 (Fig 6b)
  /// and uses 100 in production runs.
  std::uint32_t vnodes_per_node = 100;

  /// Hash used for both virtual-node positions and keys.
  hash::Algorithm algorithm = hash::Algorithm::kMurmur3_64;

  /// Ring-instance seed: clients of one job must agree on it so they build
  /// identical rings independently (the paper's clients construct the ring
  /// locally at init; no coordination service exists).
  std::uint64_t seed = 0;
};

class ConsistentHashRing final : public PlacementStrategy {
 public:
  explicit ConsistentHashRing(RingConfig config = {});

  /// Convenience: ring over nodes {0..node_count-1}.
  ConsistentHashRing(std::uint32_t node_count, RingConfig config);

  [[nodiscard]] std::string_view name() const override { return "hash_ring"; }
  [[nodiscard]] NodeId owner(std::string_view key) const override;
  void add_node(NodeId node) override;

  /// Adds a node with a capacity weight: it receives
  /// round(weight * vnodes_per_node) virtual positions and therefore
  /// ~weight x the average key share.  Supports heterogeneous NVMe sizes
  /// (e.g. the 2.9-3.5 TB mix of the KISTI Neuron nodes in the artifact).
  /// Weight <= 0 is clamped to one virtual position.
  void add_node_weighted(NodeId node, double weight);

  /// Virtual positions currently owned by `node` (0 when absent).
  [[nodiscard]] std::size_t vnode_count_of(NodeId node) const;
  void remove_node(NodeId node) override;
  [[nodiscard]] bool contains(NodeId node) const override;
  [[nodiscard]] std::vector<NodeId> nodes() const override;
  [[nodiscard]] std::size_t node_count() const override {
    return node_positions_.size();
  }
  [[nodiscard]] std::unique_ptr<PlacementStrategy> clone() const override;

  /// Typed deep copy for callers that need ring-specific operations on the
  /// duplicate (the membership layer snapshots the ring per epoch:
  /// clone-then-mutate keeps every published view immutable).
  [[nodiscard]] std::unique_ptr<ConsistentHashRing> clone_ring() const;

  /// Owner for an already-computed key hash (saves re-hashing when the
  /// caller caches hashes, as HvacClient does).
  [[nodiscard]] NodeId owner_of_hash(std::uint64_t key_hash) const;

  /// Owner lookup that skips nodes for which `excluded` returns true —
  /// the per-client failure view used by the DES substrate, where every
  /// client flags failures at its own pace but all share one physical
  /// ring.  Equivalent to remove_node on a per-client copy, without the
  /// per-client memory.  Returns kInvalidNode when everything is excluded.
  [[nodiscard]] NodeId owner_of_hash_excluding(
      std::uint64_t key_hash,
      const std::function<bool(NodeId)>& excluded) const;

  /// Position on the ring for a key (the value looked up clockwise).
  [[nodiscard]] std::uint64_t key_position(std::string_view key) const;

  /// The first `count` distinct physical nodes clockwise from the key —
  /// the replica chain used by the replication extension.  Fewer than
  /// `count` entries when membership is smaller.
  [[nodiscard]] std::vector<NodeId> owner_chain(std::string_view key,
                                                std::size_t count) const;

  /// owner_chain for a precomputed key hash (DES hot path).
  [[nodiscard]] std::vector<NodeId> owner_chain_of_hash(
      std::uint64_t key_hash, std::size_t count) const;

  /// Result of a bounded-load lookup: the node the key actually routes
  /// to, the primary it would have routed to under plain lookup, and how
  /// many distinct candidates the walk inspected (1 = no spill).
  struct BoundedLookup {
    NodeId chosen = kInvalidNode;
    NodeId primary = kInvalidNode;
    std::uint32_t inspected = 0;
    [[nodiscard]] bool spilled() const { return chosen != primary; }
  };

  /// Consistent hashing with bounded loads (the Envoy ring-hash spill
  /// idiom): walks distinct non-excluded physical nodes clockwise from
  /// the key — the same order as owner_chain — and routes to the first
  /// one `overloaded` clears.  Inspects at most `max_candidates` distinct
  /// nodes; when every one of them is overloaded the key stays with the
  /// primary, so correctness never depends on the load signal and two
  /// clients sharing a ring epoch and load view resolve identically.
  /// chosen == kInvalidNode when every node is excluded.
  [[nodiscard]] BoundedLookup owner_of_hash_bounded(
      std::uint64_t key_hash, std::size_t max_candidates,
      const std::function<bool(NodeId)>& excluded,
      const std::function<bool(NodeId)>& overloaded) const;

  /// Total virtual positions currently on the ring (V * alive nodes, minus
  /// any positions dropped due to hash collisions — collisions are resolved
  /// by linear probing so drops are effectively impossible).
  [[nodiscard]] std::size_t position_count() const { return ring_.size(); }

  /// Fraction of the 2^64 circle owned by each alive node.  Sums to 1.
  /// Used by balance tests: with V=100 the max/mean arc share stays within
  /// a small factor of 1.
  [[nodiscard]] std::unordered_map<NodeId, double> arc_share() const;

  [[nodiscard]] const RingConfig& config() const { return config_; }

  /// Order-independent 64-bit digest of the full ring state (every
  /// virtual position and its owner).  The paper's clients build their
  /// rings independently with no coordination service; comparing
  /// fingerprints is the cheap way to assert they agree (same seed, same
  /// membership) before a job starts.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Human-readable snapshot ("hash_ring nodes=4 vnodes=100 seed=7
  /// positions=400 fingerprint=..."), for logs and debugging.
  [[nodiscard]] std::string describe() const;

 private:
  /// Ring position of virtual replica `replica` of `node`.
  [[nodiscard]] std::uint64_t vnode_position(NodeId node,
                                             std::uint32_t replica) const;

  RingConfig config_;
  /// position -> physical node; the "clockwise" order is ascending keys
  /// with wrap-around at 2^64.
  std::map<std::uint64_t, NodeId> ring_;
  /// node -> its virtual positions (for O(V log) removal).
  std::unordered_map<NodeId, std::vector<std::uint64_t>> node_positions_;
};

}  // namespace ftc::ring
