// multi_hash.hpp - "Multiple hash functions" baseline (Sec IV-B).
//
// Keeps the original modulo placement over the INITIAL membership, but when
// the primary owner is dead, retries with hash functions seeded 1, 2, ...
// until an alive node is hit.  Only keys whose owner died move — better
// than static modulo — but the rehash chain grows with repeated failures
// and the probe loop's cost is unbounded in the failure count, the
// scalability concern the paper raises.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "hash/hash.hpp"
#include "ring/placement.hpp"

namespace ftc::ring {

class MultiHashPlacement final : public PlacementStrategy {
 public:
  explicit MultiHashPlacement(
      hash::Algorithm algorithm = hash::Algorithm::kMurmur3_64);
  MultiHashPlacement(std::uint32_t node_count, hash::Algorithm algorithm);

  [[nodiscard]] std::string_view name() const override { return "multi_hash"; }
  [[nodiscard]] NodeId owner(std::string_view key) const override;
  void add_node(NodeId node) override;
  void remove_node(NodeId node) override;
  [[nodiscard]] bool contains(NodeId node) const override;
  [[nodiscard]] std::vector<NodeId> nodes() const override;
  [[nodiscard]] std::size_t node_count() const override {
    return alive_.size();
  }
  [[nodiscard]] std::unique_ptr<PlacementStrategy> clone() const override;

  /// Number of hash evaluations the last owner() call needed — exposes the
  /// probe-chain-length scalability problem for the ablation bench.
  [[nodiscard]] std::uint32_t last_probe_count() const {
    return last_probe_count_;
  }

 private:
  hash::Algorithm algorithm_;
  /// Membership at construction; the primary hash always runs modulo this
  /// table so surviving keys never move.
  std::vector<NodeId> initial_table_;
  std::unordered_set<NodeId> alive_;
  mutable std::uint32_t last_probe_count_ = 0;
};

}  // namespace ftc::ring
