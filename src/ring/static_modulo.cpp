#include "ring/static_modulo.hpp"

#include <algorithm>

namespace ftc::ring {

StaticModuloPlacement::StaticModuloPlacement(hash::Algorithm algorithm)
    : algorithm_(algorithm) {}

StaticModuloPlacement::StaticModuloPlacement(std::uint32_t node_count,
                                             hash::Algorithm algorithm)
    : algorithm_(algorithm) {
  nodes_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) nodes_.push_back(n);
}

NodeId StaticModuloPlacement::owner(std::string_view key) const {
  if (nodes_.empty()) return kInvalidNode;
  const std::uint64_t h = hash::hash_key(algorithm_, key);
  return nodes_[h % nodes_.size()];
}

void StaticModuloPlacement::add_node(NodeId node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end() && *it == node) return;
  nodes_.insert(it, node);
}

void StaticModuloPlacement::remove_node(NodeId node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end() && *it == node) nodes_.erase(it);
}

bool StaticModuloPlacement::contains(NodeId node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

std::unique_ptr<PlacementStrategy> StaticModuloPlacement::clone() const {
  return std::make_unique<StaticModuloPlacement>(*this);
}

}  // namespace ftc::ring
