// movement_analysis.hpp - Quantifies data movement on membership change.
//
// The paper's argument against the baseline placements (Sec IV-B) is the
// volume of data that must move when a node fails.  This module snapshots a
// strategy's assignment over a key population, applies a membership change
// to a clone, and reports exactly which keys moved and where they went —
// the machinery behind the placement-movement ablation bench and the
// minimal-movement property tests.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ring/placement.hpp"

namespace ftc::ring {

/// Synthetic key population: `count` file paths shaped like the CosmoFlow
/// TFRecord names ("<prefix>/file_000042.tfrecord").
std::vector<std::string> make_key_population(std::size_t count,
                                             const std::string& prefix = "/lustre/orion/cosmoUniverse");

/// Result of one membership-change experiment.
struct MovementReport {
  std::size_t total_keys = 0;
  /// Keys whose owner changed.
  std::size_t moved_keys = 0;
  /// Of the moved keys, how many were owned by the removed node(s) — i.e.
  /// moves that were unavoidable (data actually lost).
  std::size_t lost_keys = 0;
  /// Moves of keys whose original owner still lives: pure churn, the cost
  /// the hash ring eliminates.
  std::size_t gratuitous_moves = 0;
  /// Per-surviving-node count of keys received from elsewhere.
  std::unordered_map<NodeId, std::size_t> received_by_node;

  [[nodiscard]] double moved_fraction() const {
    return total_keys ? static_cast<double>(moved_keys) /
                            static_cast<double>(total_keys)
                      : 0.0;
  }
  [[nodiscard]] double gratuitous_fraction() const {
    return total_keys ? static_cast<double>(gratuitous_moves) /
                            static_cast<double>(total_keys)
                      : 0.0;
  }
  /// Number of distinct nodes that received at least one key.
  [[nodiscard]] std::size_t receiver_node_count() const {
    return received_by_node.size();
  }
};

/// Assigns every key with `strategy` (read-only helper).
std::vector<NodeId> assign_all(const PlacementStrategy& strategy,
                               const std::vector<std::string>& keys);

/// Removes `failed_nodes` from a clone of `strategy` and reports movement
/// across the key population.  The input strategy is not modified.
MovementReport analyze_removal(const PlacementStrategy& strategy,
                               const std::vector<std::string>& keys,
                               const std::vector<NodeId>& failed_nodes);

/// Adds `new_nodes` to a clone and reports movement (elastic scale-up).
MovementReport analyze_addition(const PlacementStrategy& strategy,
                                const std::vector<std::string>& keys,
                                const std::vector<NodeId>& new_nodes);

}  // namespace ftc::ring
