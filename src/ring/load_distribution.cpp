#include "ring/load_distribution.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_map>

#include "common/histogram.hpp"  // percentile_sorted
#include "common/rng.hpp"
#include "hash/murmur3.hpp"

namespace ftc::ring {
namespace {

struct RingEntry {
  std::uint64_t position;
  std::uint32_t node;
  bool operator<(const RingEntry& other) const {
    return position < other.position;
  }
};

/// Builds the sorted virtual-position table for N nodes with V replicas
/// each; identical position derivation to ConsistentHashRing.
std::vector<RingEntry> build_ring(std::uint32_t nodes, std::uint32_t vnodes,
                                  std::uint64_t seed) {
  std::vector<RingEntry> ring;
  ring.reserve(static_cast<std::size_t>(nodes) * vnodes);
  const std::uint64_t mixed_seed =
      hash::fmix64(seed + 0x9E3779B97F4A7C15ULL);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    for (std::uint32_t r = 0; r < vnodes; ++r) {
      const std::uint64_t packed = (static_cast<std::uint64_t>(n) << 32) | r;
      ring.push_back(RingEntry{hash::fmix64(packed ^ mixed_seed), n});
    }
  }
  std::sort(ring.begin(), ring.end());
  return ring;
}

/// Counts sorted values in the half-open modular interval (lo, hi].
std::uint64_t count_in_arc(const std::vector<std::uint64_t>& sorted,
                           std::uint64_t lo, std::uint64_t hi) {
  auto count_le = [&sorted](std::uint64_t x) -> std::uint64_t {
    return static_cast<std::uint64_t>(
        std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
  };
  if (lo < hi) return count_le(hi) - count_le(lo);
  if (lo == hi) return 0;  // degenerate arc
  // Wrap-around: (lo, 2^64) U [0, hi].
  return (sorted.size() - count_le(lo)) + count_le(hi);
}

}  // namespace

LoadDistributionResult run_load_distribution(
    const LoadDistributionParams& params) {
  LoadDistributionResult result;
  result.params = params;
  if (params.physical_nodes < 2 || params.file_count == 0) return result;

  const std::vector<RingEntry> ring =
      build_ring(params.physical_nodes, params.vnodes_per_node, params.seed);
  Rng trial_rng(params.seed ^ 0xF17EDB15ULL);

  std::vector<std::uint64_t> file_hashes(params.file_count);
  std::vector<double> spacings(params.file_count + 1);
  for (std::uint32_t trial = 0; trial < params.trials; ++trial) {
    // Fresh uniform file-hash population per trial, generated directly in
    // sorted order via normalized exponential spacings (the order
    // statistics of i.i.d. uniforms) — statistically identical to hashing
    // distinct path strings and sorting, without the O(F log F) sort.
    Rng file_rng(trial_rng());
    double total = 0.0;
    for (double& s : spacings) {
      s = file_rng.exponential(1.0);
      total += s;
    }
    constexpr double kCircle = 18446744073709551616.0;  // 2^64
    double acc = 0.0;
    for (std::uint64_t i = 0; i < params.file_count; ++i) {
      acc += spacings[i];
      file_hashes[i] = static_cast<std::uint64_t>(acc / total * kCircle);
    }

    const auto failed =
        static_cast<std::uint32_t>(trial_rng.below(params.physical_nodes));

    // Every arc ending at one of the failed node's virtual positions loses
    // its files to the clockwise successor owned by a surviving node.
    std::unordered_map<std::uint32_t, std::uint64_t> received;
    std::uint64_t lost = 0;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      if (ring[i].node != failed) continue;
      const std::size_t prev = (i == 0) ? ring.size() - 1 : i - 1;
      const std::uint64_t files =
          count_in_arc(file_hashes, ring[prev].position, ring[i].position);
      if (files == 0) continue;
      lost += files;
      // Successor scan skipping the failed node's own positions.
      std::size_t j = (i + 1) % ring.size();
      while (ring[j].node == failed) j = (j + 1) % ring.size();
      received[ring[j].node] += files;
    }

    result.lost_files.add(static_cast<double>(lost));
    result.receiver_nodes.add(static_cast<double>(received.size()));
    if (!received.empty()) {
      std::vector<double> loads;
      loads.reserve(received.size());
      for (const auto& [node, files] : received) {
        loads.push_back(static_cast<double>(files));
      }
      result.files_per_receiver.add(static_cast<double>(lost) /
                                    static_cast<double>(received.size()));
      result.receiver_fairness.add(jain_fairness(loads));
      // Max and p99 share the one interpolation everyone else uses.
      std::sort(loads.begin(), loads.end());
      result.max_files_one_receiver.add(percentile_sorted(loads, 100.0));
      result.p99_files_one_receiver.add(percentile_sorted(loads, 99.0));
    }

    if (params.bounded_load_c > 1.0) {
      // Full-population model on the post-failure ring: every arc's files
      // go to the arc's first surviving clockwise owner (plain), or spill
      // past owners whose accumulated load already exceeds c x mean
      // (bounded, same distinct-candidate walk as owner_of_hash_bounded,
      // falling back to the primary when every candidate is overloaded).
      const std::uint32_t survivors = params.physical_nodes - 1;
      const double cap = params.bounded_load_c *
                         static_cast<double>(params.file_count) /
                         static_cast<double>(survivors);
      std::vector<double> plain(params.physical_nodes, 0.0);
      std::vector<double> bounded(params.physical_nodes, 0.0);
      double spilled_files = 0.0;
      const std::uint32_t want = std::min(
          {1 + params.bounded_load_max_spill, survivors, 8U});
      for (std::size_t i = 0; i < ring.size(); ++i) {
        const std::size_t prev = (i == 0) ? ring.size() - 1 : i - 1;
        const std::uint64_t files =
            count_in_arc(file_hashes, ring[prev].position, ring[i].position);
        if (files == 0) continue;
        std::size_t j = i;
        while (ring[j].node == failed) j = (j + 1) % ring.size();
        const std::uint32_t primary = ring[j].node;
        plain[primary] += static_cast<double>(files);
        std::uint32_t chosen = primary;
        bool placed = false;
        std::uint32_t seen[8];
        std::uint32_t seen_count = 0;
        std::size_t k = j;
        while (seen_count < want) {
          const std::uint32_t cand = ring[k].node;
          k = (k + 1) % ring.size();
          if (cand == failed) continue;
          bool dup = false;
          for (std::uint32_t s = 0; s < seen_count; ++s) {
            if (seen[s] == cand) {
              dup = true;
              break;
            }
          }
          if (dup) continue;
          seen[seen_count++] = cand;
          if (bounded[cand] < cap) {
            chosen = cand;
            placed = true;
            break;
          }
        }
        if (!placed) chosen = primary;
        bounded[chosen] += static_cast<double>(files);
        if (chosen != primary) spilled_files += static_cast<double>(files);
      }
      plain.erase(plain.begin() + failed);
      bounded.erase(bounded.begin() + failed);
      result.peak_to_mean_plain.add(peak_to_mean(plain));
      result.peak_to_mean_bounded.add(peak_to_mean(bounded));
      result.bounded_spill_fraction.add(
          spilled_files / static_cast<double>(params.file_count));
    }
  }
  return result;
}

std::vector<LoadDistributionResult> run_load_distribution_sweep(
    const LoadDistributionParams& base,
    const std::vector<std::uint32_t>& vnode_counts) {
  std::vector<LoadDistributionResult> results;
  results.reserve(vnode_counts.size());
  for (std::uint32_t v : vnode_counts) {
    LoadDistributionParams p = base;
    p.vnodes_per_node = v;
    results.push_back(run_load_distribution(p));
  }
  return results;
}

}  // namespace ftc::ring
