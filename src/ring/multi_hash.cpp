#include "ring/multi_hash.hpp"

#include <algorithm>

namespace ftc::ring {

MultiHashPlacement::MultiHashPlacement(hash::Algorithm algorithm)
    : algorithm_(algorithm) {}

MultiHashPlacement::MultiHashPlacement(std::uint32_t node_count,
                                       hash::Algorithm algorithm)
    : algorithm_(algorithm) {
  initial_table_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    initial_table_.push_back(n);
    alive_.insert(n);
  }
}

NodeId MultiHashPlacement::owner(std::string_view key) const {
  last_probe_count_ = 0;
  if (alive_.empty() || initial_table_.empty()) return kInvalidNode;
  // Probe with seeds 0,1,2,... over the ORIGINAL table until an alive node
  // is found.  Seed 0 is the primary placement, identical to the pre-fault
  // static modulo assignment.
  for (std::uint64_t seed = 0;; ++seed) {
    ++last_probe_count_;
    const std::uint64_t h = hash::hash_key(algorithm_, key, seed);
    const NodeId candidate = initial_table_[h % initial_table_.size()];
    if (alive_.contains(candidate)) return candidate;
    // With at least one alive node the expected probe count is
    // |initial| / |alive|; cap defensively at a generous multiple and fall
    // back to deterministic selection to guarantee termination.
    if (seed > 64 + 8 * initial_table_.size()) {
      return *std::min_element(alive_.begin(), alive_.end());
    }
  }
}

void MultiHashPlacement::add_node(NodeId node) {
  if (alive_.contains(node)) return;
  alive_.insert(node);
  if (std::find(initial_table_.begin(), initial_table_.end(), node) ==
      initial_table_.end()) {
    initial_table_.push_back(node);
  }
}

void MultiHashPlacement::remove_node(NodeId node) { alive_.erase(node); }

bool MultiHashPlacement::contains(NodeId node) const {
  return alive_.contains(node);
}

std::vector<NodeId> MultiHashPlacement::nodes() const {
  std::vector<NodeId> out(alive_.begin(), alive_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<PlacementStrategy> MultiHashPlacement::clone() const {
  return std::make_unique<MultiHashPlacement>(*this);
}

}  // namespace ftc::ring
