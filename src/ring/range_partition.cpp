#include "ring/range_partition.hpp"

#include <algorithm>
#include <limits>

namespace ftc::ring {

RangePartitionPlacement::RangePartitionPlacement(hash::Algorithm algorithm,
                                                 bool rebalance_on_failure)
    : algorithm_(algorithm), rebalance_(rebalance_on_failure) {}

RangePartitionPlacement::RangePartitionPlacement(std::uint32_t node_count,
                                                 hash::Algorithm algorithm,
                                                 bool rebalance_on_failure)
    : algorithm_(algorithm), rebalance_(rebalance_on_failure) {
  for (std::uint32_t n = 0; n < node_count; ++n) {
    boundaries_.push_back(Range{0, n});
  }
  equalize();
}

void RangePartitionPlacement::equalize() {
  const std::size_t n = boundaries_.size();
  if (n == 0) return;
  // Even split of [0, 2^64): range i covers ((i) * 2^64/n, (i+1) * 2^64/n]
  // approximately; final range pinned to UINT64_MAX.
  const std::uint64_t step =
      std::numeric_limits<std::uint64_t>::max() / static_cast<std::uint64_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    boundaries_[i].upper = (i + 1 == n)
                               ? std::numeric_limits<std::uint64_t>::max()
                               : (static_cast<std::uint64_t>(i) + 1) * step;
  }
}

NodeId RangePartitionPlacement::owner(std::string_view key) const {
  if (boundaries_.empty()) return kInvalidNode;
  const std::uint64_t h = hash::hash_key(algorithm_, key);
  const auto it = std::lower_bound(
      boundaries_.begin(), boundaries_.end(), h,
      [](const Range& r, std::uint64_t value) { return r.upper < value; });
  return it != boundaries_.end() ? it->node : boundaries_.back().node;
}

void RangePartitionPlacement::add_node(NodeId node) {
  if (contains(node)) return;
  boundaries_.push_back(Range{std::numeric_limits<std::uint64_t>::max(), node});
  // Keep nodes ordered by NodeId along the key space for determinism.
  std::sort(boundaries_.begin(), boundaries_.end(),
            [](const Range& a, const Range& b) { return a.node < b.node; });
  equalize();
}

void RangePartitionPlacement::remove_node(NodeId node) {
  const auto it = std::find_if(
      boundaries_.begin(), boundaries_.end(),
      [node](const Range& r) { return r.node == node; });
  if (it == boundaries_.end()) return;
  boundaries_.erase(it);
  if (boundaries_.empty()) return;
  if (rebalance_) {
    // Re-equalize every boundary: balanced load, heavy movement.
    equalize();
  } else {
    // Lazy merge: the successor range absorbs the dead range by keeping
    // boundaries as-is (lower_bound now maps the dead range's keys to the
    // next range); pin the final upper bound.
    boundaries_.back().upper = std::numeric_limits<std::uint64_t>::max();
  }
}

bool RangePartitionPlacement::contains(NodeId node) const {
  return std::any_of(boundaries_.begin(), boundaries_.end(),
                     [node](const Range& r) { return r.node == node; });
}

std::vector<NodeId> RangePartitionPlacement::nodes() const {
  std::vector<NodeId> out;
  out.reserve(boundaries_.size());
  for (const Range& r : boundaries_) out.push_back(r.node);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<PlacementStrategy> RangePartitionPlacement::clone() const {
  return std::make_unique<RangePartitionPlacement>(*this);
}

}  // namespace ftc::ring
