// range_partition.hpp - Range-partitioning baseline (Sec IV-B, [19]).
//
// The 64-bit key space is divided into contiguous ranges, one per node.
// On failure the dead node's range merges into its successor, then — to
// restore load balance — all surviving ranges are re-equalized, which is
// precisely the "adjustments to other nodes' data ranges ... leading to
// more extensive redistribution" drawback the paper attributes to this
// scheme.  Rebalancing is optional (`rebalance_on_failure`) so the ablation
// can show both the imbalanced-but-lazy and balanced-but-movey variants.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "hash/hash.hpp"
#include "ring/placement.hpp"

namespace ftc::ring {

class RangePartitionPlacement final : public PlacementStrategy {
 public:
  explicit RangePartitionPlacement(
      hash::Algorithm algorithm = hash::Algorithm::kMurmur3_64,
      bool rebalance_on_failure = true);
  RangePartitionPlacement(std::uint32_t node_count, hash::Algorithm algorithm,
                          bool rebalance_on_failure = true);

  [[nodiscard]] std::string_view name() const override {
    return "range_partition";
  }
  [[nodiscard]] NodeId owner(std::string_view key) const override;
  void add_node(NodeId node) override;
  void remove_node(NodeId node) override;
  [[nodiscard]] bool contains(NodeId node) const override;
  [[nodiscard]] std::vector<NodeId> nodes() const override;
  [[nodiscard]] std::size_t node_count() const override {
    return boundaries_.size();
  }
  [[nodiscard]] std::unique_ptr<PlacementStrategy> clone() const override;

  [[nodiscard]] bool rebalances_on_failure() const { return rebalance_; }

 private:
  struct Range {
    std::uint64_t upper;  ///< Inclusive upper bound of this node's range.
    NodeId node;
  };

  /// Re-splits [0, 2^64) evenly among current members.
  void equalize();

  hash::Algorithm algorithm_;
  bool rebalance_;
  /// Ascending by `upper`; a key hash h belongs to the first range with
  /// upper >= h.  The last range always has upper == UINT64_MAX.
  std::vector<Range> boundaries_;
};

}  // namespace ftc::ring
