// static_modulo.hpp - Original HVAC placement: hash(path) % N.
//
// This is the strategy the unmodified HVAC uses (Sec IV-B, first
// paragraph): uniform, trivially cheap, but brittle — removing a node
// changes N, so nearly (N-1)/N of ALL keys change owner, forcing massive
// re-caching of data that was never lost.  Implemented as the NoFT/worst
// baseline for the movement ablation.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "hash/hash.hpp"
#include "ring/placement.hpp"

namespace ftc::ring {

class StaticModuloPlacement final : public PlacementStrategy {
 public:
  explicit StaticModuloPlacement(
      hash::Algorithm algorithm = hash::Algorithm::kFnv1a64);
  StaticModuloPlacement(std::uint32_t node_count, hash::Algorithm algorithm);

  [[nodiscard]] std::string_view name() const override {
    return "static_modulo";
  }
  [[nodiscard]] NodeId owner(std::string_view key) const override;
  void add_node(NodeId node) override;
  void remove_node(NodeId node) override;
  [[nodiscard]] bool contains(NodeId node) const override;
  [[nodiscard]] std::vector<NodeId> nodes() const override { return nodes_; }
  [[nodiscard]] std::size_t node_count() const override {
    return nodes_.size();
  }
  [[nodiscard]] std::unique_ptr<PlacementStrategy> clone() const override;

 private:
  hash::Algorithm algorithm_;
  /// Alive nodes, ascending; owner = nodes_[hash % nodes_.size()], so any
  /// membership change re-indexes almost everything.
  std::vector<NodeId> nodes_;
};

}  // namespace ftc::ring
