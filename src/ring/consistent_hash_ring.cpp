#include "ring/consistent_hash_ring.hpp"

#include <algorithm>
#include <cstdio>

#include "hash/murmur3.hpp"

namespace ftc::ring {

ConsistentHashRing::ConsistentHashRing(RingConfig config)
    : config_(config) {
  if (config_.vnodes_per_node == 0) config_.vnodes_per_node = 1;
}

ConsistentHashRing::ConsistentHashRing(std::uint32_t node_count,
                                       RingConfig config)
    : ConsistentHashRing(config) {
  for (std::uint32_t n = 0; n < node_count; ++n) add_node(n);
}

std::uint64_t ConsistentHashRing::vnode_position(NodeId node,
                                                 std::uint32_t replica) const {
  // Integer mixing instead of hashing a formatted string: equivalent
  // avalanche quality, no allocation.  The seed decorrelates independent
  // rings (e.g. different jobs sharing nodes).
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(node) << 32) | replica;
  return hash::fmix64(packed ^ hash::fmix64(config_.seed + 0x9E3779B97F4A7C15ULL));
}

void ConsistentHashRing::add_node(NodeId node) {
  add_node_weighted(node, 1.0);
}

void ConsistentHashRing::add_node_weighted(NodeId node, double weight) {
  if (node_positions_.contains(node)) return;
  // Clamp before the cast: negative or huge weights must not wrap.
  double scaled = weight * static_cast<double>(config_.vnodes_per_node) + 0.5;
  if (scaled < 1.0) scaled = 1.0;
  constexpr double kMaxReplicas = 1 << 20;
  if (scaled > kMaxReplicas) scaled = kMaxReplicas;
  const auto replicas = static_cast<std::uint32_t>(scaled);
  std::vector<std::uint64_t>& positions = node_positions_[node];
  positions.reserve(replicas);
  for (std::uint32_t r = 0; r < replicas; ++r) {
    std::uint64_t pos = vnode_position(node, r);
    // Linear probe on the (astronomically unlikely) collision with another
    // node's virtual position; never drop a replica.
    while (!ring_.try_emplace(pos, node).second) ++pos;
    positions.push_back(pos);
  }
}

std::size_t ConsistentHashRing::vnode_count_of(NodeId node) const {
  const auto it = node_positions_.find(node);
  return it != node_positions_.end() ? it->second.size() : 0;
}

void ConsistentHashRing::remove_node(NodeId node) {
  const auto it = node_positions_.find(node);
  if (it == node_positions_.end()) return;
  for (std::uint64_t pos : it->second) ring_.erase(pos);
  node_positions_.erase(it);
}

bool ConsistentHashRing::contains(NodeId node) const {
  return node_positions_.contains(node);
}

std::vector<NodeId> ConsistentHashRing::nodes() const {
  std::vector<NodeId> out;
  out.reserve(node_positions_.size());
  for (const auto& [node, positions] : node_positions_) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<PlacementStrategy> ConsistentHashRing::clone() const {
  return std::make_unique<ConsistentHashRing>(*this);
}

std::unique_ptr<ConsistentHashRing> ConsistentHashRing::clone_ring() const {
  return std::make_unique<ConsistentHashRing>(*this);
}

std::uint64_t ConsistentHashRing::key_position(std::string_view key) const {
  return hash::hash_key(config_.algorithm, key, config_.seed);
}

NodeId ConsistentHashRing::owner_of_hash(std::uint64_t key_hash) const {
  if (ring_.empty()) return kInvalidNode;
  // Clockwise successor: first virtual position >= the key's position,
  // wrapping to the ring's first entry past the top of the circle.
  auto it = ring_.lower_bound(key_hash);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

NodeId ConsistentHashRing::owner(std::string_view key) const {
  return owner_of_hash(key_position(key));
}

NodeId ConsistentHashRing::owner_of_hash_excluding(
    std::uint64_t key_hash,
    const std::function<bool(NodeId)>& excluded) const {
  if (ring_.empty()) return kInvalidNode;
  auto it = ring_.lower_bound(key_hash);
  // Clockwise walk skipping excluded nodes; bounded by one full lap.
  for (std::size_t steps = 0; steps < ring_.size(); ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (!excluded(it->second)) return it->second;
    ++it;
  }
  return kInvalidNode;
}

std::vector<NodeId> ConsistentHashRing::owner_chain(std::string_view key,
                                                    std::size_t count) const {
  return owner_chain_of_hash(key_position(key), count);
}

std::vector<NodeId> ConsistentHashRing::owner_chain_of_hash(
    std::uint64_t key_hash, std::size_t count) const {
  std::vector<NodeId> chain;
  if (ring_.empty() || count == 0) return chain;
  const std::size_t want = std::min(count, node_positions_.size());
  chain.reserve(want);
  auto it = ring_.lower_bound(key_hash);
  // Walk clockwise collecting distinct physical nodes; bounded by ring size.
  for (std::size_t steps = 0; steps < ring_.size() && chain.size() < want;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(chain.begin(), chain.end(), it->second) == chain.end()) {
      chain.push_back(it->second);
    }
    ++it;
  }
  return chain;
}

ConsistentHashRing::BoundedLookup ConsistentHashRing::owner_of_hash_bounded(
    std::uint64_t key_hash, std::size_t max_candidates,
    const std::function<bool(NodeId)>& excluded,
    const std::function<bool(NodeId)>& overloaded) const {
  BoundedLookup result;
  if (ring_.empty() || max_candidates == 0) return result;
  auto it = ring_.lower_bound(key_hash);
  // Clockwise walk over distinct non-excluded nodes, same order as
  // owner_chain; stop at the first candidate under its load bound.  A
  // small fixed-size seen set keeps the walk allocation-free for the
  // candidate counts in practice (<= primary + a few spills).
  NodeId seen[8];
  std::size_t seen_count = 0;
  const std::size_t want =
      max_candidates < sizeof(seen) / sizeof(seen[0])
          ? max_candidates
          : sizeof(seen) / sizeof(seen[0]);
  for (std::size_t steps = 0; steps < ring_.size() && seen_count < want;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    const NodeId node = it->second;
    ++it;
    if (excluded && excluded(node)) continue;
    bool duplicate = false;
    for (std::size_t i = 0; i < seen_count; ++i) {
      if (seen[i] == node) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen[seen_count++] = node;
    if (result.primary == kInvalidNode) result.primary = node;
    ++result.inspected;
    if (!overloaded || !overloaded(node)) {
      result.chosen = node;
      return result;
    }
  }
  // Every inspected candidate overloaded (or everything excluded): the
  // key stays with its primary — the bound degrades to plain lookup
  // rather than to an unstable choice.
  result.chosen = result.primary;
  return result;
}

std::uint64_t ConsistentHashRing::fingerprint() const {
  // Iteration over std::map is position-ordered, so the digest is a
  // deterministic function of the ring contents.
  std::uint64_t digest = 0x9E3779B97F4A7C15ULL;
  for (const auto& [pos, node] : ring_) {
    digest = hash::fmix64(digest ^ pos);
    digest = hash::fmix64(digest ^ node);
  }
  return digest;
}

std::string ConsistentHashRing::describe() const {
  std::string out = "hash_ring nodes=";
  out += std::to_string(node_positions_.size());
  out += " vnodes_per_node=";
  out += std::to_string(config_.vnodes_per_node);
  out += " seed=";
  out += std::to_string(config_.seed);
  out += " positions=";
  out += std::to_string(ring_.size());
  out += " fingerprint=";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint()));
  out += buf;
  return out;
}

std::unordered_map<NodeId, double> ConsistentHashRing::arc_share() const {
  std::unordered_map<NodeId, double> share;
  if (ring_.empty()) return share;
  if (ring_.size() == 1) {
    share[ring_.begin()->second] = 1.0;
    return share;
  }
  constexpr double kCircle = 18446744073709551616.0;  // 2^64
  // The arc ending at a virtual position is owned by that position's node;
  // the first entry's arc wraps around from the last position (unsigned
  // subtraction gives the modular distance).
  std::uint64_t prev = ring_.rbegin()->first;
  for (const auto& [pos, node] : ring_) {
    share[node] += static_cast<double>(pos - prev) / kCircle;
    prev = pos;
  }
  return share;
}

}  // namespace ftc::ring
