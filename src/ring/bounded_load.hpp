// bounded_load.hpp - Client-side load view for bounded-load placement.
//
// Consistent hashing maps every key to exactly one owner, so a Zipfian
// workload saturates the hot key's node while the rest idle.  The fix
// (consistent hashing with bounded loads, as deployed in Envoy's
// ring-hash balancer) spills a key past its primary when the primary's
// observed load exceeds c x the mean.  The "observed load" here is this
// estimator: a per-node EWMA of the load hints servers piggyback on RPC
// responses (see rpc::RpcResponse::load_hint) — clients learn the load
// surface purely from traffic they were already sending.
//
// Single-threaded by design: each HvacClient owns one estimator and
// feeds it only from its own synchronous response path, mirroring how
// the fault detector keeps per-client failure views without locks.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "common/types.hpp"

namespace ftc::ring {

class NodeLoadEstimator {
 public:
  /// `alpha` in (0, 1] is the EWMA smoothing factor applied per observed
  /// hint (values outside the range are clamped into it).
  explicit NodeLoadEstimator(double alpha = 0.3);

  /// Folds one observed load sample for `node` into its estimate.
  void observe(NodeId node, double load);

  /// Drops a node's estimate (it left the ring).
  void forget(NodeId node);

  /// Current estimate for `node`; 0 when never observed.
  [[nodiscard]] double load(NodeId node) const;

  /// Mean estimate over every observed node (0 when none observed).
  [[nodiscard]] double mean_load() const;

  [[nodiscard]] std::size_t observed_nodes() const { return loads_.size(); }

  /// The bounded-load predicate: true when `node`'s estimate exceeds
  /// c x the mean over observed nodes.  Deliberately conservative while
  /// the view is thin: with fewer than two observed nodes one sample
  /// says nothing about *imbalance*, so nothing is overloaded and
  /// lookup degrades to the plain single-owner walk.
  [[nodiscard]] bool overloaded(NodeId node, double c) const;

  /// Drops every estimate (e.g. after a ring epoch bump the old load
  /// surface no longer describes the new placement).
  void clear();

 private:
  double alpha_;
  std::unordered_map<NodeId, double> loads_;
  /// Running sum of `loads_` values, so mean_load() is O(1) on the
  /// per-read lookup path.
  double sum_ = 0.0;
};

}  // namespace ftc::ring
