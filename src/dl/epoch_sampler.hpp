// epoch_sampler.hpp - Deterministic per-epoch shuffling and sharding.
//
// Data-parallel DL reshuffles the dataset every epoch and assigns each
// node a disjoint shard (Sec II-A).  The permutation is a pure function of
// (seed, epoch) so that after an elastic restart every surviving node can
// recompute the same global order and re-shard it over the new membership
// without communication — mirroring Horovod elastic's deterministic
// sampler reset when training rolls back to the epoch start.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ftc::dl {

class EpochSampler {
 public:
  EpochSampler(std::uint32_t file_count, std::uint64_t seed);

  /// Global file order for an epoch (same for every caller).
  [[nodiscard]] std::vector<std::uint32_t> epoch_permutation(
      std::uint32_t epoch) const;

  /// The contiguous slice of the epoch permutation that `rank` (0-based
  /// among `total` participants) reads.  Ranks r < remainder get one extra
  /// file; the union over all ranks is exactly the whole epoch.
  [[nodiscard]] std::vector<std::uint32_t> shard(std::uint32_t epoch,
                                                 std::uint32_t rank,
                                                 std::uint32_t total) const;

  /// Shard size for a rank without materializing the permutation.
  [[nodiscard]] std::uint32_t shard_size(std::uint32_t rank,
                                         std::uint32_t total) const;

  /// {begin, size} of rank's slice within the epoch permutation — for
  /// callers that materialize the permutation once and slice it N times
  /// (the DES engine at 1024 nodes).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> shard_bounds(
      std::uint32_t rank, std::uint32_t total) const;

  /// Every rank's shard for an epoch in one call (one permutation
  /// materialized, `total` slices).  Element r equals shard(epoch, r,
  /// total); the prefetch planner consumes these as the per-node upcoming
  /// sample sets at each epoch boundary.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> shards(
      std::uint32_t epoch, std::uint32_t total) const;

  [[nodiscard]] std::uint32_t file_count() const { return file_count_; }

 private:
  std::uint32_t file_count_;
  std::uint64_t seed_;
};

}  // namespace ftc::dl
