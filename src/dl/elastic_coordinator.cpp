#include "dl/elastic_coordinator.hpp"

#include <cstdint>
#include <limits>

namespace ftc::dl {

ElasticCoordinator::ElasticCoordinator(std::uint32_t node_count)
    : alive_(node_count, true), alive_count_(node_count) {}

bool ElasticCoordinator::on_node_failure(std::uint32_t node) {
  if (node >= alive_.size() || !alive_[node]) return false;
  alive_[node] = false;
  --alive_count_;
  return true;
}

bool ElasticCoordinator::is_alive(std::uint32_t node) const {
  return node < alive_.size() && alive_[node];
}

std::vector<std::uint32_t> ElasticCoordinator::alive_nodes() const {
  std::vector<std::uint32_t> out;
  out.reserve(alive_count_);
  for (std::uint32_t n = 0; n < alive_.size(); ++n) {
    if (alive_[n]) out.push_back(n);
  }
  return out;
}

std::uint32_t ElasticCoordinator::rank_of(std::uint32_t node) const {
  if (!is_alive(node)) return std::numeric_limits<std::uint32_t>::max();
  std::uint32_t rank = 0;
  for (std::uint32_t n = 0; n < node; ++n) {
    if (alive_[n]) ++rank;
  }
  return rank;
}

}  // namespace ftc::dl
