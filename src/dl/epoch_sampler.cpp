#include "dl/epoch_sampler.hpp"

#include <numeric>

#include "common/rng.hpp"

namespace ftc::dl {

EpochSampler::EpochSampler(std::uint32_t file_count, std::uint64_t seed)
    : file_count_(file_count), seed_(seed) {}

std::vector<std::uint32_t> EpochSampler::epoch_permutation(
    std::uint32_t epoch) const {
  std::vector<std::uint32_t> order(file_count_);
  std::iota(order.begin(), order.end(), 0);
  // Epoch-tagged child stream: every participant derives the identical
  // permutation with no communication.
  Rng rng = Rng(seed_).fork(0x59A3B1ULL + epoch);
  rng.shuffle(order);
  return order;
}

std::uint32_t EpochSampler::shard_size(std::uint32_t rank,
                                       std::uint32_t total) const {
  if (total == 0 || rank >= total) return 0;
  const std::uint32_t base = file_count_ / total;
  const std::uint32_t remainder = file_count_ % total;
  return base + (rank < remainder ? 1 : 0);
}

std::pair<std::uint32_t, std::uint32_t> EpochSampler::shard_bounds(
    std::uint32_t rank, std::uint32_t total) const {
  if (total == 0 || rank >= total) return {0, 0};
  const std::uint32_t base = file_count_ / total;
  const std::uint32_t remainder = file_count_ % total;
  // Offset = rank * base + min(rank, remainder): contiguous slices.
  const std::uint32_t begin =
      rank * base + (rank < remainder ? rank : remainder);
  return {begin, shard_size(rank, total)};
}

std::vector<std::vector<std::uint32_t>> EpochSampler::shards(
    std::uint32_t epoch, std::uint32_t total) const {
  std::vector<std::vector<std::uint32_t>> out(total);
  if (total == 0) return out;
  const std::vector<std::uint32_t> order = epoch_permutation(epoch);
  for (std::uint32_t rank = 0; rank < total; ++rank) {
    const auto [begin, size] = shard_bounds(rank, total);
    out[rank].assign(order.begin() + begin, order.begin() + begin + size);
  }
  return out;
}

std::vector<std::uint32_t> EpochSampler::shard(std::uint32_t epoch,
                                               std::uint32_t rank,
                                               std::uint32_t total) const {
  std::vector<std::uint32_t> out;
  if (total == 0 || rank >= total) return out;
  const std::vector<std::uint32_t> order = epoch_permutation(epoch);
  const auto [begin, size] = shard_bounds(rank, total);
  out.assign(order.begin() + begin, order.begin() + begin + size);
  return out;
}

}  // namespace ftc::dl
