#include "dl/threaded_trainer.hpp"

#include <algorithm>
#include <chrono>

#include "common/logging.hpp"
#include "dl/elastic_coordinator.hpp"
#include "dl/epoch_sampler.hpp"

namespace ftc::dl {

ThreadedTrainingResult run_threaded_training(
    cluster::Cluster& cluster, const std::vector<std::string>& paths,
    std::uint32_t expected_bytes, const ThreadedTrainingConfig& config) {
  ThreadedTrainingResult result;
  const auto file_count = static_cast<std::uint32_t>(paths.size());
  EpochSampler sampler(file_count, config.shuffle_seed);
  ElasticCoordinator elastic(cluster.node_count());

  std::size_t next_injection = 0;

  for (std::uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    bool epoch_restarted;
    do {
      epoch_restarted = false;
      const std::uint64_t pfs_reads_at_start = cluster.pfs().read_count();
      const std::vector<std::uint32_t> members = elastic.alive_nodes();
      const auto total = static_cast<std::uint32_t>(members.size());
      if (total == 0) {
        result.abort_reason = "no nodes alive";
        return result;
      }

      // Every member's shard for this epoch; read round-robin across
      // members to approximate step-synchronized batches.
      const std::vector<std::vector<std::uint32_t>> shards =
          sampler.shards(epoch, total);
      std::size_t max_shard = 0;
      for (std::uint32_t rank = 0; rank < total; ++rank) {
        max_shard = std::max(max_shard, shards[rank].size());
      }

      if (config.prefetch) {
        // Epoch boundary: every member knows its whole upcoming shard
        // (the shuffle is pure in (seed, epoch)), so hand it to the
        // client before the first step.  Pulls overlap with the reads
        // below — the loop never waits for them.
        for (std::uint32_t rank = 0; rank < total; ++rank) {
          std::vector<std::string> upcoming;
          upcoming.reserve(shards[rank].size());
          for (const std::uint32_t file : shards[rank]) {
            upcoming.push_back(paths[file]);
          }
          cluster.client(members[rank]).prefetch_epoch(upcoming);
        }
      }

      const auto epoch_start = std::chrono::steady_clock::now();
      std::uint64_t files_this_epoch = 0;
      for (std::size_t position = 0;
           position < max_shard && !epoch_restarted; ++position) {
        for (std::uint32_t rank = 0; rank < total; ++rank) {
          if (position >= shards[rank].size()) continue;

          // Failure injection checkpoint (job-wide file counter).
          if (next_injection < config.injections.size()) {
            const auto& injection = config.injections[next_injection];
            if (injection.epoch == epoch &&
                files_this_epoch >= injection.after_files &&
                elastic.is_alive(injection.victim)) {
              FTC_LOG(kInfo, "trainer")
                  << "injecting failure of node " << injection.victim
                  << " in epoch " << epoch << " after " << files_this_epoch
                  << " files";
              cluster.fail_node(injection.victim);
              ++next_injection;
              if (elastic.on_node_failure(injection.victim)) {
                // Horovod elastic: roll back to the epoch start with the
                // survivors.
                elastic.acknowledge_restart();
                ++result.restarts;
                epoch_restarted = true;
                break;
              }
            }
          }

          const std::uint32_t node = members[rank];
          if (!elastic.is_alive(node)) continue;
          const std::string& path = paths[shards[rank][position]];
          auto read = cluster.client(node).read_file(path);
          if (!read.is_ok()) {
            result.abort_reason = "read of " + path + " failed: " +
                                  read.status().to_string();
            return result;
          }
          ++result.files_read;
          ++files_this_epoch;
          result.bytes_read += read.value().size();
          if (read.value().size() != expected_bytes) {
            ++result.integrity_failures;
          }
        }
      }
      if (!epoch_restarted) {
        result.pfs_reads_per_epoch.push_back(cluster.pfs().read_count() -
                                             pfs_reads_at_start);
        result.epoch_seconds.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          epoch_start)
                .count());
      }
    } while (epoch_restarted);
    ++result.epochs_finished;
  }

  result.completed = true;
  return result;
}

}  // namespace ftc::dl
