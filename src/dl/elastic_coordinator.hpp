// elastic_coordinator.hpp - Horovod-elastic membership/rollback semantics.
//
// The paper runs CosmoFlow under `horovodrun --elastic`: when a worker
// dies, training does not abort — it rolls back to the start of the
// current epoch and resumes with the surviving workers (Sec V-A2).  This
// class is the pure bookkeeping of that protocol: the alive set, the
// rank mapping over survivors, epoch rollback decisions, and restart
// counters.  Both the threaded trainer and the DES experiment drive it.
#pragma once

#include <cstdint>
#include <vector>

namespace ftc::dl {

class ElasticCoordinator {
 public:
  explicit ElasticCoordinator(std::uint32_t node_count);

  /// Marks a node dead.  Returns true when this requires an epoch rollback
  /// (i.e. the node was alive and training must restart the epoch).
  bool on_node_failure(std::uint32_t node);

  [[nodiscard]] bool is_alive(std::uint32_t node) const;
  [[nodiscard]] std::uint32_t alive_count() const { return alive_count_; }
  [[nodiscard]] std::uint32_t initial_count() const {
    return static_cast<std::uint32_t>(alive_.size());
  }

  /// Alive nodes in ascending id order — the post-restart rank order
  /// (rank i = i-th surviving node).
  [[nodiscard]] std::vector<std::uint32_t> alive_nodes() const;

  /// Rank of `node` among survivors, or UINT32_MAX when dead.
  [[nodiscard]] std::uint32_t rank_of(std::uint32_t node) const;

  /// Restart bookkeeping: the trainer calls this when it performs the
  /// rollback the last `on_node_failure` demanded.
  void acknowledge_restart() { ++restarts_; }
  [[nodiscard]] std::uint32_t restart_count() const { return restarts_; }

 private:
  std::vector<bool> alive_;
  std::uint32_t alive_count_;
  std::uint32_t restarts_ = 0;
};

}  // namespace ftc::dl
