// threaded_trainer.hpp - End-to-end training loop over the threaded cluster.
//
// Drives a data-parallel "training job" against a cluster::Cluster the way
// CosmoFlow-under-Horovod-elastic drives HVAC: per-epoch reshuffle and
// shard, step-synchronized reads, crash-stop failure injection mid-epoch,
// and rollback-to-epoch-start with the survivors (Sec V-A2/V-A3).  Wall
// time here is not the measurement of interest (that is the DES
// substrate's job) — this exists to verify the *semantics*: every sample
// is readable in every epoch, under every FT mode, with data integrity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace ftc::dl {

struct ThreadedTrainingConfig {
  std::uint32_t epochs = 3;
  std::uint64_t shuffle_seed = 99;

  /// Epoch-ahead prefetch: at each epoch boundary every member hands its
  /// client the shard it is about to read (prefetch_epoch), so remote-
  /// owned files arrive node-to-node before the trainer asks for them.
  /// Requires the cluster's clients to have prefetch.enabled; off = the
  /// legacy demand-only loop, bit for bit.
  bool prefetch = false;

  struct Injection {
    std::uint32_t epoch = 1;        ///< epoch during which the node dies
    std::uint32_t after_files = 0;  ///< files read (job-wide) into the epoch
    cluster::NodeId victim = 0;
  };
  /// Failures to inject, in order.  Victims must be distinct.
  std::vector<Injection> injections;
};

struct ThreadedTrainingResult {
  bool completed = false;
  std::string abort_reason;
  std::uint32_t restarts = 0;
  std::uint32_t epochs_finished = 0;
  std::uint64_t files_read = 0;
  std::uint64_t bytes_read = 0;
  /// PFS reads observed per finished epoch (index = epoch).
  std::vector<std::uint64_t> pfs_reads_per_epoch;
  /// Wall seconds per finished epoch (restarted passes re-time).  Not a
  /// simulation measurement — bench_fig5 uses it to compare cold vs
  /// prefetched epochs under injected network latency.
  std::vector<double> epoch_seconds;
  /// Reads that returned wrong-sized payloads (must stay 0).
  std::uint64_t integrity_failures = 0;
};

/// Runs the job to completion or abort.  `paths` is the staged dataset
/// (see Cluster::stage_dataset); `expected_bytes` is the per-file payload
/// size used for integrity checks.
ThreadedTrainingResult run_threaded_training(
    cluster::Cluster& cluster, const std::vector<std::string>& paths,
    std::uint32_t expected_bytes, const ThreadedTrainingConfig& config);

}  // namespace ftc::dl
