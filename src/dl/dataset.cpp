#include "dl/dataset.hpp"

namespace ftc::dl {

Dataset::Dataset(const storage::FileCatalog& catalog,
                 std::uint32_t samples_per_file)
    : catalog_(catalog),
      samples_per_file_(samples_per_file == 0 ? 1 : samples_per_file) {}

std::uint32_t Dataset::files_per_step_per_node(
    std::uint32_t global_batch_samples, std::uint32_t node_count) const {
  if (node_count == 0 || global_batch_samples == 0) return 1;
  const std::uint64_t files_per_step =
      (static_cast<std::uint64_t>(global_batch_samples) + samples_per_file_ -
       1) /
      samples_per_file_;
  const std::uint64_t per_node =
      (files_per_step + node_count - 1) / node_count;
  return per_node > 0 ? static_cast<std::uint32_t>(per_node) : 1;
}

std::uint32_t Dataset::steps_per_epoch(std::uint32_t global_batch_samples,
                                       std::uint32_t node_count) const {
  const std::uint32_t per_node =
      files_per_step_per_node(global_batch_samples, node_count);
  const std::uint64_t files_per_step =
      static_cast<std::uint64_t>(per_node) * node_count;
  if (files_per_step == 0) return 0;
  return static_cast<std::uint32_t>(
      (file_count() + files_per_step - 1) / files_per_step);
}

}  // namespace ftc::dl
