// cosmoflow.hpp - Constants of the paper's workload (Sec V-A2).
//
// CosmoFlow (MLPerf HPC) trains a 3D CNN on the cosmoUniverse dataset:
// 1.3 TB of TFRecords, 524,288 training samples, 65,536 validation
// samples, 5 epochs per experiment, Horovod elastic execution.  These
// presets parameterize the synthetic dataset and the DES training model;
// `scale` shrinks the dataset proportionally so laptop-scale runs keep the
// paper's ratios (PFS-vs-NVMe bandwidth per byte) while finishing quickly.
#pragma once

#include <cstdint>

namespace ftc::dl {

struct CosmoflowWorkload {
  std::uint64_t dataset_bytes = 1300ULL * 1000 * 1000 * 1000;  // 1.3 TB
  std::uint32_t train_samples = 524288;
  std::uint32_t validation_samples = 65536;
  std::uint32_t epochs = 5;
  /// Samples per TFRecord file in the packed layout.
  std::uint32_t samples_per_file = 64;

  [[nodiscard]] std::uint32_t train_file_count() const {
    return train_samples / samples_per_file;
  }
  [[nodiscard]] std::uint64_t mean_file_bytes() const {
    const std::uint32_t files = train_file_count();
    return files > 0 ? dataset_bytes / files : 0;
  }

  /// Returns a copy with the dataset shrunk by `factor` (same file sizes,
  /// fewer files) — the substitution documented in DESIGN.md.
  [[nodiscard]] CosmoflowWorkload scaled_down(std::uint32_t factor) const {
    CosmoflowWorkload w = *this;
    if (factor > 1) {
      w.dataset_bytes /= factor;
      w.train_samples /= factor;
      w.validation_samples /= factor;
    }
    return w;
  }
};

}  // namespace ftc::dl
