// dataset.hpp - Training-dataset view over a file catalog.
//
// Adds the DL-side structure (samples per file, global batch size) on top
// of storage::FileCatalog so the trainer can convert between samples,
// files and steps.  Reading is always whole-file (TFRecord granularity),
// matching HVAC's file-level caching.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/file_catalog.hpp"

namespace ftc::dl {

class Dataset {
 public:
  /// `samples_per_file` > 0; the catalog's files are the shuffling unit.
  Dataset(const storage::FileCatalog& catalog, std::uint32_t samples_per_file);

  [[nodiscard]] std::uint32_t file_count() const {
    return static_cast<std::uint32_t>(catalog_.file_count());
  }
  [[nodiscard]] std::uint64_t sample_count() const {
    return static_cast<std::uint64_t>(file_count()) * samples_per_file_;
  }
  [[nodiscard]] std::uint32_t samples_per_file() const {
    return samples_per_file_;
  }
  [[nodiscard]] const storage::FileCatalog& catalog() const {
    return catalog_;
  }
  [[nodiscard]] const std::string& path_of(std::uint32_t file_index) const {
    return catalog_.file(file_index).path;
  }
  [[nodiscard]] std::uint64_t bytes_of(std::uint32_t file_index) const {
    return catalog_.file(file_index).size_bytes;
  }

  /// Files each node must read per step so that the global batch consumes
  /// `global_batch_samples` samples across `node_count` nodes (ceiling).
  [[nodiscard]] std::uint32_t files_per_step_per_node(
      std::uint32_t global_batch_samples, std::uint32_t node_count) const;

  /// Steps needed for one epoch over the whole dataset.
  [[nodiscard]] std::uint32_t steps_per_epoch(std::uint32_t global_batch_samples,
                                              std::uint32_t node_count) const;

 private:
  const storage::FileCatalog& catalog_;
  std::uint32_t samples_per_file_;
};

}  // namespace ftc::dl
