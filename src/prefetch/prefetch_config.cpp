#include "prefetch/prefetch_config.hpp"

#include <string>

namespace ftc::prefetch {

Status PrefetchConfig::validate() const {
  if (enabled) {
    if (depth < 1 || depth > 256) {
      return Status::invalid_argument(
          "prefetch.depth must be in [1, 256] (got " + std::to_string(depth) +
          ")");
    }
  }
  if (p2p && !enabled) {
    return Status::invalid_argument(
        "prefetch.p2p requires prefetch.enabled (the peer-get path shares "
        "the planner's staging and accounting)");
  }
  return Status::ok();
}

}  // namespace ftc::prefetch
