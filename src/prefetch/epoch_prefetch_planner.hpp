// epoch_prefetch_planner.hpp - Diff next epoch's sample set against ring
// placement.
//
// The DL shuffle is a pure function of (seed, epoch) — dl::EpochSampler
// gives every node its upcoming sample set before the epoch starts.  The
// planner turns that knowledge into work: given the upcoming paths for
// one node, it answers "which of these will NOT already be here when the
// trainer asks for them?".  Files the ring places on this node arrive via
// the normal demand path (a local read caches them authoritatively), and
// files a previous epoch already staged are done; everything else is a
// remote-owned file worth pulling node-to-node (kPeerGet) ahead of use.
//
// The planner is pure placement arithmetic in the ReplicationPolicy
// spirit: it never talks to a transport, holds no locks, and resolves
// ownership through a caller-supplied callback so it works against any
// ring view (epoch'd membership snapshot, legacy local ring, or a test
// stub).  The client executes the plan with bounded-depth background
// pulls; the planner only decides *what* and in *which order* (upcoming
// read order, so the pipeline stays ahead of the trainer).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ftc::prefetch {

/// The planner's verdict for one node at one epoch boundary.
struct PrefetchPlan {
  /// Remote-owned upcoming files not yet staged locally, deduplicated, in
  /// upcoming read order.  These are the kPeerGet pulls to issue.
  std::vector<std::string> pulls;
  /// Upcoming files the ring already places on this node — the demand
  /// path caches them authoritatively, so pulling would be wasted work.
  /// When placement already matches the sample set this equals the whole
  /// epoch and `pulls` is empty.
  std::size_t self_owned = 0;
  /// Upcoming files a previous epoch (or an earlier duplicate in this
  /// one) already staged locally.
  std::size_t already_local = 0;
};

class EpochPrefetchPlanner {
 public:
  /// Resolves a path to its current ring owner (kInvalidNode = no owner,
  /// e.g. an empty ring — such files are skipped, the demand path owns
  /// the fallback story).
  using OwnerResolver = std::function<NodeId(const std::string&)>;
  /// True when the bytes are already staged on this node.
  using LocalPredicate = std::function<bool(const std::string&)>;

  /// Pure diff: upcoming sample set minus (self-owned ∪ already-local),
  /// order-preserving and deduplicated.
  [[nodiscard]] PrefetchPlan plan(const std::vector<std::string>& upcoming,
                                  NodeId self, const OwnerResolver& owner_of,
                                  const LocalPredicate& already_local) const;
};

}  // namespace ftc::prefetch
