// prefetch_config.hpp - Knobs for the shuffle-aware epoch-ahead prefetcher.
//
// One nested block shared by every substrate that can prefetch: the
// threaded cluster client (HvacClientConfig::prefetch) and the DES
// (destim::ExperimentConfig::prefetch) read the same struct, so the two
// prefetch implementations cannot drift apart in their knob vocabulary.
// Everything defaults off; a default-constructed config is bit-for-bit
// the legacy no-prefetch behaviour.
#pragma once

#include <cstdint>

#include "common/status.hpp"

namespace ftc::prefetch {

/// Prefetch knobs (all default-off; legacy behaviour unchanged).
struct PrefetchConfig {
  /// Master switch for the epoch-boundary planner: at each epoch start the
  /// client diffs its upcoming sample set against ring placement and pulls
  /// remote-owned files ahead of use.  Requires hash-ring placement (the
  /// owning config enforces the mode gate).
  bool enabled = false;
  /// Max in-flight background pulls per client.  Bounds both the memory
  /// staged ahead of the trainer and the load prefetch may put on peers.
  /// Valid with enabled: 1..256.
  std::uint32_t depth = 8;
  /// Peer-to-peer recache: when a read would otherwise fall back to the
  /// PFS, walk the replica chain with kPeerGet first so a warm peer (ring
  /// owner or generation-stamped standby) supplies the bytes node-to-node.
  /// Requires enabled.
  bool p2p = false;

  /// Rejects contradictory knob combinations.  Mode gating (prefetch needs
  /// the hash ring) lives with the owning config, which knows the
  /// placement mode.
  [[nodiscard]] Status validate() const;
};

}  // namespace ftc::prefetch
