#include "prefetch/epoch_prefetch_planner.hpp"

#include <unordered_set>

namespace ftc::prefetch {

PrefetchPlan EpochPrefetchPlanner::plan(
    const std::vector<std::string>& upcoming, NodeId self,
    const OwnerResolver& owner_of, const LocalPredicate& already_local) const {
  PrefetchPlan out;
  std::unordered_set<std::string_view> seen;
  seen.reserve(upcoming.size());
  for (const std::string& path : upcoming) {
    if (!seen.insert(path).second) {
      ++out.already_local;  // Duplicate sample: the first pull covers it.
      continue;
    }
    if (already_local(path)) {
      ++out.already_local;
      continue;
    }
    const NodeId owner = owner_of(path);
    if (owner == kInvalidNode) {
      continue;  // No owner to pull from; the demand path handles it.
    }
    if (owner == self) {
      ++out.self_owned;
      continue;
    }
    out.pulls.push_back(path);
  }
  return out;
}

}  // namespace ftc::prefetch
