// pfs_store.hpp - Threaded-substrate stand-in for the Lustre PFS.
//
// Holds the authoritative copy of every training file (the paper's Orion
// holds the dataset; caches are derived state).  Reads optionally sleep a
// configurable latency so integration tests can observe the NVMe-vs-PFS
// cost gap.  Thread-safe: many clients and servers read concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/buffer.hpp"
#include "common/status.hpp"

namespace ftc::cluster {

class PfsStore {
 public:
  explicit PfsStore(
      std::chrono::microseconds read_latency = std::chrono::microseconds{0});

  /// Stores/overwrites a file (dataset staging; not latency-modelled).
  void put(const std::string& path, common::Buffer contents);

  /// Reads a file, sleeping the configured latency first.  Returns a
  /// refcounted reference to the stored bytes — the transfer cost is
  /// modelled by the latency, not by a heap copy.
  StatusOr<common::Buffer> read(const std::string& path) const;

  [[nodiscard]] bool contains(const std::string& path) const;
  [[nodiscard]] std::size_t file_count() const;

  /// Total reads served — the metric the FT designs try to minimize.
  [[nodiscard]] std::uint64_t read_count() const { return reads_.load(); }

  void set_read_latency(std::chrono::microseconds latency) {
    read_latency_ = latency;
  }
  [[nodiscard]] std::chrono::microseconds read_latency() const {
    return read_latency_;
  }

  /// Generates `count` synthetic files of `bytes` each under `prefix`,
  /// with deterministic pseudo-random contents (seeded by the index).
  void populate_synthetic(const std::string& prefix, std::uint32_t count,
                          std::uint32_t bytes);

 private:
  std::chrono::microseconds read_latency_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, common::Buffer> files_;
  mutable std::atomic<std::uint64_t> reads_{0};
};

}  // namespace ftc::cluster
