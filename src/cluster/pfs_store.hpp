// pfs_store.hpp - Threaded-substrate stand-in for the Lustre PFS.
//
// Holds the authoritative copy of every training file (the paper's Orion
// holds the dataset; caches are derived state).  Reads optionally sleep a
// configurable latency so integration tests can observe the NVMe-vs-PFS
// cost gap.  Thread-safe: many clients and servers read concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/buffer.hpp"
#include "common/status.hpp"

namespace ftc::cluster {

class PfsStore {
 public:
  explicit PfsStore(
      std::chrono::microseconds read_latency = std::chrono::microseconds{0});

  /// Stores/overwrites a file (dataset staging; not latency-modelled).
  void put(const std::string& path, common::Buffer contents);

  /// Reads a file, sleeping the configured latency first.  Returns a
  /// refcounted reference to the stored bytes — the transfer cost is
  /// modelled by the latency, not by a heap copy.
  StatusOr<common::Buffer> read(const std::string& path) const;

  [[nodiscard]] bool contains(const std::string& path) const;
  [[nodiscard]] std::size_t file_count() const;

  /// Total reads served — the metric the FT designs try to minimize.
  [[nodiscard]] std::uint64_t read_count() const { return reads_.load(); }

  /// Reads served for one specific path.  The failover-storm bench uses
  /// per-path deltas to measure *duplicate* fetches of a lost file — the
  /// quantity singleflight is supposed to pin at one.
  [[nodiscard]] std::uint64_t read_count(const std::string& path) const;

  void set_read_latency(std::chrono::microseconds latency) {
    read_latency_ = latency;
  }
  [[nodiscard]] std::chrono::microseconds read_latency() const {
    return read_latency_;
  }

  /// Caps how many latency-modelled reads the PFS services at once
  /// (a job's share of Lustre OSTs is finite; excess readers queue FIFO
  /// and their effective latency stretches).  0 = unlimited, the legacy
  /// behaviour — and the default, so existing callers are unaffected.
  /// This is what makes duplicate failover-storm fetches *cost*
  /// something: N concurrent fetches through S slots take ~ceil(N/S)
  /// service times, not one.
  void set_service_concurrency(std::uint32_t slots);
  [[nodiscard]] std::uint32_t service_concurrency() const;

  /// Generates `count` synthetic files of `bytes` each under `prefix`,
  /// with deterministic pseudo-random contents (seeded by the index).
  void populate_synthetic(const std::string& prefix, std::uint32_t count,
                          std::uint32_t bytes);

 private:
  std::chrono::microseconds read_latency_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, common::Buffer> files_;
  mutable std::atomic<std::uint64_t> reads_{0};
  /// Per-path counters live under their own mutex: read() holds mutex_
  /// only shared, so it cannot mutate a map guarded by it.
  mutable std::mutex per_path_mutex_;
  mutable std::unordered_map<std::string, std::uint64_t> per_path_reads_;
  /// Service-bandwidth model (see set_service_concurrency).
  mutable std::mutex service_mutex_;
  mutable std::condition_variable service_cv_;
  std::uint32_t service_slots_ = 0;  ///< 0 = unlimited
  mutable std::uint32_t service_in_use_ = 0;
};

}  // namespace ftc::cluster
