// pfs_guard.hpp - Storm protection for the server's PFS miss path.
//
// When a node dies, its files all hash to the same ring successor and
// every client's first touch there is a miss.  Unprotected, the successor
// issues one PFS fetch per *request*; the PFS — the shared resource the
// whole cache exists to shield — absorbs a read burst proportional to
// client count, not to lost-file count.  This guard stacks three defenses
// in front of the PFS, outermost first:
//
//   1. Singleflight: concurrent fetches for one path collapse into a
//      single PFS read whose refcounted result every waiter shares
//      (duplicate fetches per lost file -> 1).
//   2. Slot limiter: at most `max_concurrent_fetches` distinct-path
//      fetches run at once; a fetch that cannot get a slot within
//      `fetch_slot_wait` is rejected kBusy instead of piling onto a
//      struggling PFS.
//   3. Circuit breaker (closed/open/half-open): sustained PFS errors or
//      slow reads trip the breaker, which fast-rejects kBusy for a
//      cooldown, then admits a single half-open trial whose outcome
//      closes or re-opens it.  kNotFound never trips it — a missing file
//      is an answer, not a health signal.
//
// kBusy rejections carry a retry-after hint; clients fold it into their
// jittered backoff.  The guard is self-contained and lock-internal so
// HvacServer composes it without a server-wide mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/buffer.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"
#include "storage/singleflight.hpp"

namespace ftc::cluster {

struct PfsGuardOptions {
  /// Distinct-path PFS fetches allowed to run concurrently.
  std::size_t max_concurrent_fetches = 4;
  /// How long a fetch waits for a slot before giving up kBusy.
  std::chrono::milliseconds fetch_slot_wait{20};
  /// Consecutive fetch failures that trip the breaker open.
  std::uint32_t breaker_failure_threshold = 8;
  /// How long an open breaker fast-rejects before the half-open trial.
  std::chrono::milliseconds breaker_cooldown{250};
  /// A successful fetch slower than this counts as a breaker failure
  /// (gray-failing PFS).  0 disables latency-based tripping.
  std::chrono::milliseconds breaker_latency_threshold{0};
};

class PfsFetchGuard {
 public:
  using FetchFn = std::function<StatusOr<common::Buffer>()>;

  explicit PfsFetchGuard(PfsGuardOptions options);

  PfsFetchGuard(const PfsFetchGuard&) = delete;
  PfsFetchGuard& operator=(const PfsFetchGuard&) = delete;

  /// What a guarded fetch produced.  `result` is shared verbatim between
  /// the leader and every coalesced waiter (refcounted payload).
  struct Outcome {
    StatusOr<common::Buffer> result;
    /// True when this call joined another caller's in-flight fetch.
    bool coalesced = false;
    /// True when the guard refused to fetch (open breaker / no slot);
    /// `result` then holds kBusy and `retry_after_ms` the suggested wait.
    bool rejected_busy = false;
    std::uint32_t retry_after_ms = 0;
  };

  /// Attaches the node's flight recorder (not owned; must outlive the
  /// guard).  `node` labels the spans; nullptr detaches.
  void set_observability(obs::FlightRecorder* recorder, NodeId node) {
    recorder_ = recorder;
    node_ = node;
  }

  /// Runs `fn` for `key` under all three defenses.  Thread-safe; `fn`
  /// executes on exactly one of the concurrent callers per key.  A
  /// sampled `trace` yields a leader span around the PFS read (or a
  /// joiner span for the coalesced wait) plus rejection events; the
  /// default all-zero context records nothing.
  Outcome fetch(const std::string& key, const FetchFn& fn,
                const obs::TraceContext& trace = {});

  /// True while the breaker is fast-rejecting (telemetry/tests).
  [[nodiscard]] bool breaker_open() const;

  struct Stats {
    std::uint64_t fetches = 0;             ///< leader executions of fn
    std::uint64_t coalesced = 0;           ///< calls that shared a flight
    std::uint64_t slot_rejections = 0;     ///< kBusy: no slot in time
    std::uint64_t breaker_rejections = 0;  ///< kBusy: breaker open
    std::uint64_t breaker_trips = 0;       ///< closed/half-open -> open
  };
  [[nodiscard]] Stats stats_snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// The leader-side path: breaker admit -> slot -> fn -> breaker record.
  /// `trace` is the *leader caller's* context; joiners who share this
  /// flight record their own wait span in fetch().
  Outcome fetch_as_leader(const std::string& key, const FetchFn& fn,
                          const obs::TraceContext& trace);

  /// Breaker admission.  Returns true to proceed (and flags the half-open
  /// trial); false fills `retry_after_ms` with the remaining cooldown.
  bool breaker_admit(std::uint32_t& retry_after_ms);
  /// Folds a finished fetch into the breaker state machine.
  void breaker_record(bool failure);
  /// Un-claims a half-open trial that never ran (slot rejection).
  void breaker_abort_trial();

  PfsGuardOptions options_;

  obs::FlightRecorder* recorder_ = nullptr;
  NodeId node_ = kInvalidNode;

  storage::Singleflight<Outcome> flights_;

  mutable std::mutex breaker_mutex_;
  BreakerState breaker_state_ = BreakerState::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  Clock::time_point open_until_{};

  mutable std::mutex slot_mutex_;
  std::condition_variable slot_cv_;
  std::size_t slots_in_use_ = 0;

  std::atomic<std::uint64_t> fetches_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> slot_rejections_{0};
  std::atomic<std::uint64_t> breaker_rejections_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
};

}  // namespace ftc::cluster
