#include "cluster/popularity.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace ftc::cluster {

SpaceSavingSketch::SpaceSavingSketch(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

double SpaceSavingSketch::record(const std::string& path) {
  const auto it = counts_.find(path);
  if (it != counts_.end()) {
    it->second += 1.0;
    return it->second;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(path, 1.0);
    return 1.0;
  }
  // Full: replace the minimum-count entry, inheriting its count — the
  // space-saving guarantee (estimate error <= evicted minimum).
  auto min_it = counts_.begin();
  for (auto cur = counts_.begin(); cur != counts_.end(); ++cur) {
    if (cur->second < min_it->second) min_it = cur;
  }
  const double inherited = min_it->second + 1.0;
  counts_.erase(min_it);
  counts_.emplace(path, inherited);
  return inherited;
}

double SpaceSavingSketch::estimate(const std::string& path) const {
  const auto it = counts_.find(path);
  return it == counts_.end() ? 0.0 : it->second;
}

std::vector<std::string> SpaceSavingSketch::decay() {
  std::vector<std::string> dropped;
  for (auto it = counts_.begin(); it != counts_.end();) {
    it->second *= 0.5;
    if (it->second < 0.5) {
      dropped.push_back(it->first);
      it = counts_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

HotFilePromoter::HotFilePromoter(Options options)
    : options_(options),
      sketch_(options.top_k == 0 ? 1 : options.top_k) {}

HotFilePromoter::Transition HotFilePromoter::record(const std::string& path) {
  ++accesses_;
  if (options_.decay_interval > 0 && accesses_ % options_.decay_interval == 0) {
    // Heat halving.  Promoted files that cooled into the demote region
    // (or fell out of the sketch entirely) queue for teardown; files in
    // the hysteresis band stay promoted — that band existing is what
    // stops flapping.
    const std::vector<std::string> evicted = sketch_.decay();
    for (const std::string& gone : evicted) {
      if (promoted_.erase(gone) > 0) pending_demotions_.push_back(gone);
    }
    for (auto it = promoted_.begin(); it != promoted_.end();) {
      if (sketch_.estimate(*it) <= options_.demote_threshold) {
        pending_demotions_.push_back(*it);
        it = promoted_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const double heat = sketch_.record(path);
  if (heat >= options_.promote_threshold && !promoted_.contains(path)) {
    promoted_.insert(path);
    return Transition::kPromoted;
  }
  return Transition::kNone;
}

std::vector<std::string> HotFilePromoter::take_demotions() {
  return std::exchange(pending_demotions_, {});
}

std::vector<std::string> HotFilePromoter::invalidate_all() {
  std::vector<std::string> dropped(promoted_.begin(), promoted_.end());
  std::sort(dropped.begin(), dropped.end());
  promoted_.clear();
  pending_demotions_.clear();
  return dropped;
}

}  // namespace ftc::cluster
