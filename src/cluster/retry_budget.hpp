// retry_budget.hpp - Token-bucket budget shared by retries and hedges.
//
// The gRPC/Finagle retry-budget idea: extra attempts (retries after a
// timeout, hedge legs raced against a slow owner) may consume at most a
// fixed *fraction* of successful traffic.  Every success deposits `ratio`
// tokens (capped); every extra attempt spends one whole token.  In steady
// state that allows ~ratio extra attempts per success — enough to mask
// blips — but under a real overload successes dry up, the bucket drains,
// and retries/hedging self-disable instead of amplifying the storm
// (retry amplification is the classic metastable-failure ingredient).
// Successes refill the bucket, so the mechanisms re-enable on recovery
// with no operator action.
//
// Single-threaded by design: HvacClient state is owned by one thread.
#pragma once

#include <algorithm>

namespace ftc::cluster {

class RetryBudget {
 public:
  /// ratio = tokens deposited per success (0 disables the budget — every
  /// spend is allowed, the legacy behaviour); cap = bucket size, which is
  /// also the initial balance so a cold client can still mask early blips.
  RetryBudget(double ratio, double cap)
      : ratio_(ratio), cap_(cap), tokens_(cap) {}

  [[nodiscard]] bool enabled() const { return ratio_ > 0.0; }

  /// Takes one token for an extra attempt; false = budget exhausted, the
  /// caller must not retry/hedge.  Always true when disabled.
  bool try_spend() {
    if (!enabled()) return true;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Deposits `ratio` for one successful request.
  void record_success() {
    if (!enabled()) return;
    tokens_ = std::min(cap_, tokens_ + ratio_);
  }

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double ratio_;
  double cap_;
  double tokens_;
};

}  // namespace ftc::cluster
