// popularity.hpp - Space-saving top-k heat sketch + hot-file promoter.
//
// The replica-fanout half of skew-tolerant placement needs to know which
// files are hot *right now* without remembering every path ever read.
// SpaceSavingSketch is the classic Metwally et al. top-k summary: at most
// `capacity` tracked entries; when a new path arrives at a full sketch it
// evicts the minimum-count entry and inherits its count (so estimates
// over-count by at most the evicted minimum — safe for a promoter, which
// only cares about the heavy tail).  Heat decays by halving all counts
// every `decay_interval` accesses, turning lifetime counts into a
// recency-weighted estimate that lets yesterday's hot file cool off.
//
// HotFilePromoter layers hysteresis on top: promote at heat >=
// promote_threshold, demote only when heat falls to <= demote_threshold.
// The dead band between the two absorbs oscillating heat (a file hovering
// around a single threshold would otherwise flap between replicated and
// not, churning kPut/kEvict traffic on every crossing).  Promotions are
// stamped with nothing ring-specific here — the client owns epoch
// bookkeeping and calls invalidate_all() when its ring view changes.
//
// Single-threaded, like the fault detector and load estimator: one
// instance per HvacClient, touched only from the client's own read path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ftc::cluster {

class SpaceSavingSketch {
 public:
  /// `capacity` >= 1 tracked entries (the "k" in top-k).
  explicit SpaceSavingSketch(std::size_t capacity);

  /// Folds one access to `path`; returns its updated count estimate.
  /// When the sketch is full and `path` is untracked, the minimum-count
  /// entry is evicted and its count inherited (+1).
  double record(const std::string& path);

  /// Count estimate for `path`; 0 when untracked.
  [[nodiscard]] double estimate(const std::string& path) const;

  [[nodiscard]] bool tracked(const std::string& path) const {
    return counts_.contains(path);
  }
  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Halves every count (exponential heat decay) and drops entries whose
  /// count falls below 0.5 — they are colder than a single fresh access.
  /// Returns the dropped paths so callers can retire dependent state.
  std::vector<std::string> decay();

 private:
  std::size_t capacity_;
  std::unordered_map<std::string, double> counts_;
};

class HotFilePromoter {
 public:
  struct Options {
    /// Sketch capacity — how many candidate-hot files are tracked.
    std::size_t top_k = 64;
    /// Heat at which a file is promoted to a replica set.
    double promote_threshold = 64.0;
    /// Heat at or below which a promoted file is demoted.  Must be
    /// strictly below promote_threshold — the gap is the hysteresis band.
    double demote_threshold = 16.0;
    /// Accesses between heat halvings (the decay clock).
    std::uint64_t decay_interval = 4096;
  };

  explicit HotFilePromoter(Options options);

  enum class Transition : std::uint8_t {
    kNone = 0,
    kPromoted = 1,  ///< `path` just crossed the promote threshold.
  };

  /// Folds one access; runs the decay clock.  Demotions caused by decay
  /// are queued and reported via take_demotions() (they concern *other*
  /// paths than the one being recorded).
  Transition record(const std::string& path);

  [[nodiscard]] bool is_promoted(const std::string& path) const {
    return promoted_.contains(path);
  }
  [[nodiscard]] std::size_t promoted_count() const { return promoted_.size(); }
  [[nodiscard]] double heat(const std::string& path) const {
    return sketch_.estimate(path);
  }

  /// Promoted files whose heat decayed into the demote region since the
  /// last call; demoted as a side effect of this call.  The caller tears
  /// down their replicas (best-effort kEvict).
  std::vector<std::string> take_demotions();

  /// Drops every promotion (ring epoch bumped: the replica sets were
  /// derived from a placement that no longer exists) and returns what was
  /// promoted.  Heat is kept — a still-hot file re-promotes against the
  /// new ring on its next accesses.
  std::vector<std::string> invalidate_all();

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
  SpaceSavingSketch sketch_;
  std::unordered_set<std::string> promoted_;
  std::vector<std::string> pending_demotions_;
  std::uint64_t accesses_ = 0;
};

}  // namespace ftc::cluster
