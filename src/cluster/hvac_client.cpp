#include "cluster/hvac_client.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/logging.hpp"
#include "hash/crc32.hpp"
#include "membership/event.hpp"
#include "membership/swim.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "ring/static_modulo.hpp"

namespace ftc::cluster {

const char* ft_mode_name(FtMode mode) {
  switch (mode) {
    case FtMode::kNone: return "NoFT";
    case FtMode::kPfsRedirect: return "FT w/ PFS";
    case FtMode::kHashRingRecache: return "FT w/ NVMe";
  }
  return "?";
}

Status HvacClientConfig::validate(std::size_t cluster_size) const {
  if (rpc_timeout <= std::chrono::milliseconds::zero()) {
    return Status::invalid_argument("rpc_timeout must be > 0");
  }
  if (timeout_limit == 0) {
    return Status::invalid_argument("timeout_limit must be >= 1");
  }
  if (mode == FtMode::kHashRingRecache && vnodes_per_node == 0) {
    return Status::invalid_argument(
        "vnodes_per_node must be >= 1 in hash-ring mode");
  }
  const Status replication_valid = replication.validate(cluster_size);
  if (!replication_valid.is_ok()) return replication_valid;
  if (replication.warm_standby && mode != FtMode::kHashRingRecache) {
    return Status::invalid_argument(
        "replication.warm_standby requires hash-ring mode (standbys are "
        "the ring's clockwise successors)");
  }
  if (reinstatement) {
    if (probe_backoff <= std::chrono::milliseconds::zero()) {
      return Status::invalid_argument("probe_backoff must be > 0");
    }
    if (probe_backoff_cap < probe_backoff) {
      return Status::invalid_argument(
          "probe_backoff_cap must be >= probe_backoff");
    }
  }
  if (hedge_reads) {
    if (!(hedge_quantile > 0.0 && hedge_quantile <= 100.0)) {
      return Status::invalid_argument("hedge_quantile must be in (0, 100]");
    }
    if (hedge_delay_multiplier < 1.0) {
      return Status::invalid_argument(
          "hedge_delay_multiplier must be >= 1.0");
    }
    if (hedge_min_samples == 0) {
      return Status::invalid_argument("hedge_min_samples must be >= 1");
    }
    if (hedge_min_delay > rpc_timeout) {
      return Status::invalid_argument(
          "hedge_min_delay must not exceed rpc_timeout");
    }
  }
  if (total_deadline < std::chrono::milliseconds::zero()) {
    return Status::invalid_argument("total_deadline must be >= 0");
  }
  if (total_deadline.count() > 0 && total_deadline <= rpc_timeout) {
    return Status::invalid_argument(
        "total_deadline must exceed rpc_timeout (a first attempt could "
        "never use its full per-RPC deadline otherwise)");
  }
  if (retry_budget_ratio < 0.0 || retry_budget_ratio > 1.0) {
    return Status::invalid_argument(
        "retry_budget_ratio must be 0 (off) or in (0, 1]");
  }
  if (retry_budget_ratio > 0.0 && retry_budget_cap < 1.0) {
    return Status::invalid_argument(
        "retry_budget_cap must be >= 1 when the budget is enabled");
  }
  if (busy_backoff_base <= std::chrono::milliseconds::zero()) {
    return Status::invalid_argument("busy_backoff_base must be > 0");
  }
  if (busy_backoff_cap < busy_backoff_base) {
    return Status::invalid_argument(
        "busy_backoff_cap must be >= busy_backoff_base");
  }
  if (bounded_load) {
    if (mode != FtMode::kHashRingRecache) {
      return Status::invalid_argument(
          "bounded_load requires hash-ring mode (spill follows the ring's "
          "clockwise successor order)");
    }
    if (bounded_load_c <= 1.0) {
      return Status::invalid_argument(
          "bounded_load_c must be > 1 (c <= 1 marks nodes at or below the "
          "mean overloaded and thrashes placement)");
    }
    if (bounded_load_max_spill == 0 || bounded_load_max_spill > 7) {
      return Status::invalid_argument(
          "bounded_load_max_spill must be in [1, 7]");
    }
  }
  if ((bounded_load || hot_fanout) &&
      (load_ewma_alpha <= 0.0 || load_ewma_alpha > 1.0)) {
    return Status::invalid_argument("load_ewma_alpha must be in (0, 1]");
  }
  if (hot_fanout) {
    if (mode != FtMode::kHashRingRecache) {
      return Status::invalid_argument(
          "hot_fanout requires hash-ring mode (replica sets are ring owner "
          "chains)");
    }
    if (hot_top_k == 0) {
      return Status::invalid_argument("hot_top_k must be >= 1");
    }
    if (hot_replica_fanout < 2) {
      return Status::invalid_argument(
          "hot_replica_fanout must be >= 2 (1 is the plain single owner)");
    }
    if (cluster_size > 0 && hot_replica_fanout > cluster_size) {
      return Status::invalid_argument(
          "hot_replica_fanout (" + std::to_string(hot_replica_fanout) +
          ") exceeds cluster size (" + std::to_string(cluster_size) + ")");
    }
    if (hot_promote_threshold <= 0.0) {
      return Status::invalid_argument("hot_promote_threshold must be > 0");
    }
    if (hot_demote_threshold < 0.0 ||
        hot_demote_threshold >= hot_promote_threshold) {
      return Status::invalid_argument(
          "hot_demote_threshold must be in [0, hot_promote_threshold) — "
          "the gap is the hysteresis band");
    }
    if (hot_decay_interval == 0) {
      return Status::invalid_argument("hot_decay_interval must be >= 1");
    }
  }
  const Status prefetch_valid = prefetch.validate();
  if (!prefetch_valid.is_ok()) return prefetch_valid;
  if (prefetch.enabled && mode != FtMode::kHashRingRecache) {
    return Status::invalid_argument(
        "prefetch.enabled requires hash-ring mode (the planner diffs the "
        "epoch's sample set against ring placement)");
  }
  return Status::ok();
}

/// Outcomes of async RPCs (hedge legs, probes), posted from transport
/// pool threads and folded in by the owning thread.  See the header.
struct HvacClient::Mailbox {
  enum class Kind : std::uint8_t {
    kRpcSuccess,
    kRpcTimeout,
    kProbeSuccess,
    kProbeFailure,
    /// A hot-fanout kPut landed (counts toward replicas_pushed — the
    /// counter bump waits for the owning thread like all detector state).
    kFanoutSuccess,
    /// A warm-standby kPut was acknowledged (first placement / generation
    /// repair); both also count toward replicas_pushed.
    kWarmSuccess,
    kWarmRestoreSuccess,
    /// A warm put was refused by a live node (admission shed) — drop the
    /// path's issue marking so a later read retries the push.
    kWarmShed,
    /// A warm put timed out: detector verdict plus the retry marking.
    kWarmTimeout,
    /// A prefetch kPeerGet pull landed with the bytes (stage them).
    kPrefetchHit,
    /// The pulled peer answered kNotFound — it does not hold the file.
    kPrefetchMiss,
    /// The pulled peer shed the request (admission kBusy): alive, just
    /// protecting itself.  Background pulls defer rather than retry.
    kPrefetchBusy,
    /// A prefetch pull timed out: detector verdict plus a re-queue so
    /// the pull re-resolves against the post-surgery ring.
    kPrefetchTimeout,
    /// A write-behind kPut was refused kFencedEpoch: the server's ring
    /// epoch is ahead of the one the put was planned under.  The node is
    /// alive; drop the path's marking so the next read re-plans against
    /// the fast-forwarded ring.
    kFencedPut,
  };
  struct Event {
    NodeId node;
    Kind kind;
    /// Warm/prefetch events only: the path the verdict affects.
    std::string path;
    /// Prefetch hits only: the pulled payload and the serving peer's
    /// generation-ledger stamp.
    common::Buffer payload{};
    std::uint64_t generation = 0;
    /// Replica-chain hop the pull targeted (0 = ring owner); a p2p miss
    /// continues at hop + 1.
    std::uint32_t hop = 0;
  };

  void post(NodeId node, Kind kind, std::string path = {}) {
    std::lock_guard lock(mutex);
    events.push_back({node, kind, std::move(path)});
  }

  void post(Event event) {
    std::lock_guard lock(mutex);
    events.push_back(std::move(event));
  }

  std::vector<Event> drain() {
    std::lock_guard lock(mutex);
    return std::exchange(events, {});
  }

  std::mutex mutex;
  std::vector<Event> events;
};

namespace {

/// Race state for one hedged read: the caller thread blocks on `cv`; the
/// primary and hedge completions (transport pool threads) fill their slot
/// and notify.  shared_ptr-owned so a leg finishing after the caller gave
/// up writes into live memory.
struct HedgeWait {
  std::mutex mutex;
  std::condition_variable cv;
  std::optional<StatusOr<rpc::RpcResponse>> primary;
  std::optional<StatusOr<rpc::RpcResponse>> hedge;
};

bool timeout_like(const Status& status) {
  // All three look identical from the application's viewpoint: the node
  // did not serve the request.
  return status.code() == StatusCode::kTimeout ||
         status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kCancelled;
}

}  // namespace

HvacClient::HvacClient(NodeId self, rpc::Transport& transport, PfsStore& pfs,
                       const std::vector<NodeId>& servers,
                       const HvacClientConfig& config)
    : self_(self), transport_(transport), pfs_(pfs), config_(config),
      detector_(FaultDetector::Options{
          .timeout_limit = config.timeout_limit,
          .allow_reinstatement = config.reinstatement &&
                                 config.mode == FtMode::kHashRingRecache,
          .probe_backoff = config.probe_backoff,
          .probe_backoff_cap = config.probe_backoff_cap,
          .max_flaps = config.max_flaps}),
      mailbox_(std::make_shared<Mailbox>()),
      retry_budget_(config.retry_budget_ratio, config.retry_budget_cap),
      backoff_rng_(config.ring_seed ^ (0x9E3779B97F4A7C15ULL * (self + 1))),
      load_estimator_(config.load_ewma_alpha),
      spread_rng_(config.ring_seed ^ (0xD1B54A32D192ED03ULL * (self + 1))) {
  const Status valid = config_.validate(servers.size());
  if (!valid.is_ok()) {
    throw std::invalid_argument("HvacClientConfig: " + valid.to_string());
  }
  if (config_.hot_fanout) {
    hot_files_ = std::make_unique<HotFilePromoter>(HotFilePromoter::Options{
        .top_k = config_.hot_top_k,
        .promote_threshold = config_.hot_promote_threshold,
        .demote_threshold = config_.hot_demote_threshold,
        .decay_interval = config_.hot_decay_interval});
    hot_policy_ = std::make_unique<placement::HotFanoutPolicy>(
        config_.hot_replica_fanout);
  }
  // Policy wiring: warm standby subsumes the synchronous miss-recache
  // push (it fires on every authoritative fill, targets the same
  // successors, and does it write-behind), so the two are mutually
  // exclusive executors of the same factor.
  if (config_.replication.warm_standby) {
    warm_policy_ = std::make_unique<placement::WarmStandbyPolicy>(
        config_.replication.factor);
  } else if (config_.replication.factor > 1) {
    miss_policy_ = std::make_unique<placement::MissRecachePolicy>(
        config_.replication.factor);
  }
  warm_inflight_ = std::make_shared<std::atomic<std::uint32_t>>(0);
  prefetch_inflight_ = std::make_shared<std::atomic<std::uint32_t>>(0);
  if (config_.prefetch.p2p) {
    peer_policy_ = std::make_unique<placement::PeerRecachePolicy>();
  }
  if (config_.mode == FtMode::kHashRingRecache) {
    ring::RingConfig ring_config;
    ring_config.vnodes_per_node = config_.vnodes_per_node;
    ring_config.seed = config_.ring_seed;
    auto ring = std::make_unique<ring::ConsistentHashRing>(ring_config);
    for (NodeId node : servers) ring->add_node(node);
    ring_view_ = ring.get();
    placement_ = std::move(ring);
  } else {
    auto modulo = std::make_unique<ring::StaticModuloPlacement>();
    for (NodeId node : servers) modulo->add_node(node);
    placement_ = std::move(modulo);
  }
}

void HvacClient::attach_membership(membership::MembershipAgent* agent) {
  membership_ = agent;
  // The hot set's generation source just changed (local ring-surgery
  // counter -> membership epoch); re-anchor so the first read does not
  // see a spurious "epoch bump" and tear down nothing for no reason.
  hot_generation_ = placement_generation();
  // Same for the warm standbys: the attach does not move the ring, so
  // re-stamp existing markings instead of re-pushing every file.
  for (auto& entry : warm_pushed_) entry.second.generation = hot_generation_;
}

void HvacClient::attach_observability(obs::FlightRecorder* recorder,
                                      std::uint32_t sample_every) {
  recorder_ = recorder;
  trace_sample_every_ = sample_every;
  trace_seq_ = 0;
}

HvacClient::Stats HvacClient::stats_snapshot() const {
  const auto load_all = [this] {
    Stats s;
    s.reads = stats_.reads.load(std::memory_order_relaxed);
    s.served_remote_cache =
        stats_.served_remote_cache.load(std::memory_order_relaxed);
    s.served_remote_fetch =
        stats_.served_remote_fetch.load(std::memory_order_relaxed);
    s.served_pfs_direct =
        stats_.served_pfs_direct.load(std::memory_order_relaxed);
    s.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
    s.nodes_flagged = stats_.nodes_flagged.load(std::memory_order_relaxed);
    s.ring_updates = stats_.ring_updates.load(std::memory_order_relaxed);
    s.checksum_failures =
        stats_.checksum_failures.load(std::memory_order_relaxed);
    s.replicas_pushed = stats_.replicas_pushed.load(std::memory_order_relaxed);
    s.hedges_launched = stats_.hedges_launched.load(std::memory_order_relaxed);
    s.hedge_wins = stats_.hedge_wins.load(std::memory_order_relaxed);
    s.primary_wins_after_hedge =
        stats_.primary_wins_after_hedge.load(std::memory_order_relaxed);
    s.hedges_to_pfs = stats_.hedges_to_pfs.load(std::memory_order_relaxed);
    s.probes_sent = stats_.probes_sent.load(std::memory_order_relaxed);
    s.nodes_reinstated =
        stats_.nodes_reinstated.load(std::memory_order_relaxed);
    s.suspicions_reported =
        stats_.suspicions_reported.load(std::memory_order_relaxed);
    s.stale_view_hints =
        stats_.stale_view_hints.load(std::memory_order_relaxed);
    s.epoch_fast_forwards =
        stats_.epoch_fast_forwards.load(std::memory_order_relaxed);
    s.busy_rejections = stats_.busy_rejections.load(std::memory_order_relaxed);
    s.retries_denied_by_budget =
        stats_.retries_denied_by_budget.load(std::memory_order_relaxed);
    s.deadline_give_ups =
        stats_.deadline_give_ups.load(std::memory_order_relaxed);
    s.load_hints_observed =
        stats_.load_hints_observed.load(std::memory_order_relaxed);
    s.spilled_reads = stats_.spilled_reads.load(std::memory_order_relaxed);
    s.load_spread_reads =
        stats_.load_spread_reads.load(std::memory_order_relaxed);
    s.hot_promotions = stats_.hot_promotions.load(std::memory_order_relaxed);
    s.hot_demotions = stats_.hot_demotions.load(std::memory_order_relaxed);
    s.hot_invalidations =
        stats_.hot_invalidations.load(std::memory_order_relaxed);
    s.warm_pushes = stats_.warm_pushes.load(std::memory_order_relaxed);
    s.warm_restores = stats_.warm_restores.load(std::memory_order_relaxed);
    s.warm_deferred = stats_.warm_deferred.load(std::memory_order_relaxed);
    s.warm_invalidations =
        stats_.warm_invalidations.load(std::memory_order_relaxed);
    s.prefetch_planned =
        stats_.prefetch_planned.load(std::memory_order_relaxed);
    s.prefetch_pulls = stats_.prefetch_pulls.load(std::memory_order_relaxed);
    s.prefetch_hits = stats_.prefetch_hits.load(std::memory_order_relaxed);
    s.prefetch_misses =
        stats_.prefetch_misses.load(std::memory_order_relaxed);
    s.prefetch_deferred =
        stats_.prefetch_deferred.load(std::memory_order_relaxed);
    s.prefetch_local_hits =
        stats_.prefetch_local_hits.load(std::memory_order_relaxed);
    s.p2p_rescues = stats_.p2p_rescues.load(std::memory_order_relaxed);
    s.p2p_bytes = stats_.p2p_bytes.load(std::memory_order_relaxed);
    s.fenced_puts = stats_.fenced_puts.load(std::memory_order_relaxed);
    s.reconcile_repushes =
        stats_.reconcile_repushes.load(std::memory_order_relaxed);
    return s;
  };
  // Torn-snapshot guard: per-field loads are individually atomic but the
  // struct is multi-field; re-read until two consecutive passes agree
  // (bounded — under a write-heavy race the last pass is still field-
  // atomic, only cross-field skew remains).
  Stats before = load_all();
  for (int i = 0; i < 3; ++i) {
    const Stats after = load_all();
    if (std::memcmp(&before, &after, sizeof(Stats)) == 0) return after;
    before = after;
  }
  return before;
}

bool HvacClient::excluded_for_data(NodeId node) const {
  if (membership_ != nullptr) {
    // The cluster's verdict outranks local history.  A flagged node was
    // reported as a suspicion (on_timeout), so while the rumor is open
    // the agent says suspect and we skip it; once the cluster refutes or
    // reinstates, the node must be routable again even though this
    // client's own counter once tripped — otherwise every client that
    // ever flagged it would shun a healthy node forever.
    return membership_->is_suspect(node);
  }
  // Legacy mode: local evidence is all there is.
  return detector_.is_out_of_service(node);
}

NodeId HvacClient::resolve_owner(const std::string& path) const {
  if (membership_ != nullptr) {
    return membership_->ring_view()->owner_excluding(
        path, [this](NodeId node) { return excluded_for_data(node); });
  }
  return placement_->owner(path);
}

std::vector<NodeId> HvacClient::replica_chain(const std::string& path,
                                              std::size_t count) const {
  if (membership_ != nullptr) {
    return membership_->ring_view()->owner_chain(path, count);
  }
  if (ring_view_ != nullptr) return ring_view_->owner_chain(path, count);
  return {};
}

void HvacClient::ingest_membership(const rpc::RpcResponse& response) {
  if (membership_ == nullptr) return;
  if (response.view_hint == rpc::ViewHint::kStaleView) {
    ++stats_.stale_view_hints;
  }
  const std::uint64_t epoch_before = membership_->epoch();
  const auto events = membership_->ingest(response);
  if (membership_->epoch() > epoch_before) ++stats_.epoch_fast_forwards;
  for (const membership::RingEvent& event : events) {
    if (event.type == membership::RingEventType::kReinstate) {
      // Cluster-wide reinstatement outranks local history: forget the
      // timeouts/flags this client accumulated against the node so it is
      // immediately routable again.
      detector_.reset_node(event.node);
    }
    // Post-heal reconciliation scope: a stale-view fast-forward is how a
    // minority-side client learns the transitions it missed during a
    // partition.  Remember which nodes those transitions named; warm
    // re-targets that cross them are the divergent suffix being walked
    // back onto the healed ring (counted in push_replicas).
    if (response.view_hint == rpc::ViewHint::kStaleView) {
      reconcile_touched_.insert(event.node);
    }
  }
}

NodeId HvacClient::current_owner(const std::string& path) const {
  return resolve_owner(path);
}

void HvacClient::add_server(NodeId node) {
  placement_->add_node(node);
  if (membership_ != nullptr) membership_->join(node);
  // Elastic scale-up shifts ~1/(N+1) of the keyspace, so replica sets
  // (hot fanouts and warm standbys alike) derived from the old ring are
  // stale.  Counting it as a ring update lets placement_generation()
  // observe the change and retire/re-target them on the next access.
  // Gated on those knobs: legacy configs keep the seed's ring_updates
  // semantics (removals and reinstatements only).
  if ((hot_files_ != nullptr || warm_policy_ != nullptr) &&
      membership_ == nullptr) {
    ++stats_.ring_updates;
  }
}

Status HvacClient::ping(NodeId node) {
  drain_mailbox();
  rpc::RpcRequest request;
  request.op = rpc::Op::kPing;
  request.client_node = self_;
  if (membership_ != nullptr) membership_->stamp_request(request);
  const auto start = rpc::Clock::now();
  auto result = transport_.call(node, std::move(request),
                                config_.rpc_timeout);
  if (result.is_ok()) {
    ingest_membership(result.value());
    observe_load_hint(node, result.value());
  }
  if (result.is_ok() && result.value().code == StatusCode::kOk) {
    latency_.record(std::chrono::duration<double, std::micro>(
                        rpc::Clock::now() - start)
                        .count());
    detector_.record_success(node);
    return Status::ok();
  }
  if (!result.is_ok() &&
      result.status().code() == StatusCode::kTimeout) {
    on_timeout(node);
    return result.status();
  }
  return result.is_ok() ? Status(result.value().code, "ping error")
                        : result.status();
}

std::chrono::milliseconds HvacClient::recommended_timeout(
    double margin) const {
  const double fallback_us =
      std::chrono::duration<double, std::micro>(config_.rpc_timeout).count();
  const double us = latency_.recommended_timeout(margin, 16, fallback_us);
  return std::chrono::milliseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(us / 1000.0)));
}

std::chrono::microseconds HvacClient::current_hedge_delay() const {
  const auto timeout_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          config_.rpc_timeout);
  std::chrono::microseconds delay;
  if (latency_.count() < config_.hedge_min_samples) {
    // No trustworthy quantile yet: hedge late enough that only an
    // egregiously slow primary triggers it.
    delay = timeout_us / 4;
  } else {
    delay = std::chrono::microseconds(static_cast<std::int64_t>(
        latency_.percentile(config_.hedge_quantile) *
        config_.hedge_delay_multiplier));
  }
  delay = std::max({delay, config_.hedge_min_delay,
                    std::chrono::microseconds{1}});
  return std::min(delay, timeout_us);
}

StatusOr<common::Buffer> HvacClient::read_from_pfs(
    const std::string& path, const obs::TraceContext& trace) {
  ++stats_.served_pfs_direct;
  if (recorder_ != nullptr && trace.sampled) {
    const std::int64_t start = obs::now_ns();
    auto result = pfs_.read(path);
    recorder_->record_span(
        obs::RecordKind::kPfsDirect, trace.child(), self_, start,
        obs::now_ns(),
        static_cast<std::uint32_t>(result.is_ok() ? StatusCode::kOk
                                                  : result.status().code()),
        0, "pfs_direct");
    return result;
  }
  return pfs_.read(path);
}

void HvacClient::push_replicas(const std::string& path,
                               const common::Buffer& contents, NodeId primary,
                               bool cache_fill,
                               const placement::ReplicaPlan* extra) {
  // Which policies fire on this read?  Miss-recache only on an
  // authoritative fill; hot fanout only on the first read after a
  // promotion; warm standby whenever the file's standbys are missing or
  // stamped with a dead ring's generation.
  const bool miss_fires = cache_fill && miss_policy_ != nullptr;
  const bool hot_fires = hot_policy_ != nullptr && hot_files_ != nullptr &&
                         pending_hot_fanout_.erase(path) > 0;
  const std::uint64_t generation = placement_generation();
  bool warm_restore = false;
  bool warm_stale = false;
  if (warm_policy_ != nullptr) {
    const auto it = warm_pushed_.find(path);
    warm_restore = it != warm_pushed_.end();
    warm_stale = !warm_restore || it->second.generation != generation;
  }
  if (!miss_fires && !hot_fires && !warm_stale && extra == nullptr) return;
  if (ring_view_ == nullptr && membership_ == nullptr) return;

  std::vector<const placement::ReplicationPolicy*> policies;
  if (miss_fires) policies.push_back(miss_policy_.get());
  if (hot_fires) policies.push_back(hot_policy_.get());
  if (warm_stale) policies.push_back(warm_policy_.get());

  // One owner-chain walk serves every firing policy.  The chain comes
  // from the epoch'd view when membership is attached — and
  // accept_response ingests the primary's response *before* calling
  // here, so a client that was stale going into the read places replicas
  // against the fast-forwarded view, never to a confirmed-failed node.
  std::size_t chain_need = 0;
  for (const auto* policy : policies) {
    chain_need = std::max(chain_need, policy->chain_length());
  }
  const auto chain = replica_chain(path, chain_need);
  const std::function<bool(NodeId)> excluded = [this](NodeId node) {
    return excluded_for_data(node);
  };
  placement::PlanContext ctx;
  ctx.path = path;
  ctx.primary = primary;
  ctx.generation = generation;
  ctx.chain = &chain;
  ctx.excluded = &excluded;

  std::vector<placement::ReplicaPlan> plans;
  plans.reserve(policies.size() + 1);
  if (miss_fires) plans.push_back(miss_policy_->plan(ctx));
  if (hot_fires) plans.push_back(hot_policy_->plan(ctx));
  // A peer-recache heal plan (already stamped with the serving peer's
  // ledger generation) merges here so the owner repair and any standby
  // placement for the same file collapse into one kPut per node.
  if (extra != nullptr) plans.push_back(*extra);

  bool warm_fires = false;
  if (warm_stale) {
    placement::ReplicaPlan warm_plan = warm_policy_->plan(ctx);
    std::vector<NodeId> targets;
    targets.reserve(warm_plan.targets.size());
    for (const auto& target : warm_plan.targets) {
      targets.push_back(target.node);
    }
    const auto it = warm_pushed_.find(path);
    if (it != warm_pushed_.end() && it->second.targets == targets) {
      // The ring moved, but this file's standbys did not (most files on
      // most epoch bumps): the bytes are already in place, so adopt the
      // new generation without touching the network.  The standby keeps
      // its older stamp — harmless, since stamps only guard against
      // rollback and the next real move will stamp higher.
      it->second.generation = generation;
    } else {
      // A genuine (re-)placement.  Repairs get the tighter
      // restore_concurrency cap so a storm-wide re-target cannot
      // monopolize the async pool; deferral leaves the marking stale so
      // the next read of this file retries once the pool drains.
      const std::uint32_t cap = warm_restore
                                    ? config_.replication.restore_concurrency
                                    : config_.replication.write_behind_depth;
      if (warm_inflight_->load(std::memory_order_relaxed) >= cap) {
        ++stats_.warm_deferred;
      } else {
        if (warm_restore) {
          ++stats_.warm_invalidations;
          // Post-heal reconciliation: this re-target is partition repair
          // (not ordinary churn) when its old or new standby set touches
          // a node named by a stale-view heal delta — the minority's
          // divergent suffix being re-pushed through the ordinary lazy
          // re-target machinery.
          if (!reconcile_touched_.empty()) {
            const auto crosses = [this](const std::vector<NodeId>& nodes) {
              return std::any_of(nodes.begin(), nodes.end(),
                                 [this](NodeId node) {
                                   return reconcile_touched_.contains(node);
                                 });
            };
            if (crosses(it->second.targets) || crosses(targets)) {
              ++stats_.reconcile_repushes;
              if (recorder_ != nullptr) {
                recorder_->record_event(obs::RecordKind::kPartitionReconcile,
                                        obs::TraceContext{}, self_,
                                        static_cast<std::uint32_t>(
                                            StatusCode::kOk),
                                        generation, path);
              }
            }
          }
        }
        warm_fires = true;
        // Mark at issue time, before any put executes: the sync path
        // below may erase the marking on failure, and ordering the other
        // way would lose that erasure.
        warm_pushed_[path] = {generation, std::move(targets)};
        plans.push_back(std::move(warm_plan));
      }
    }
  }
  if (plans.empty()) return;

  bool warm_issued = false;
  for (const auto& target : placement::merge_plans(plans)) {
    execute_put(target, path, contents, warm_restore);
    if (target.has_trigger(placement::ReplicationTrigger::kWarmStandby)) {
      warm_issued = true;
    }
  }
  if (warm_fires && warm_issued && recorder_ != nullptr) {
    recorder_->record_event(
        obs::RecordKind::kWarmPush, obs::TraceContext{}, self_,
        static_cast<std::uint32_t>(warm_restore ? StatusCode::kUnavailable
                                                : StatusCode::kOk),
        generation, path);
  }
}

void HvacClient::execute_put(const placement::MergedTarget& target,
                             const std::string& path,
                             const common::Buffer& contents,
                             bool warm_restore) {
  const NodeId backup = target.node;
  const bool warm =
      target.has_trigger(placement::ReplicationTrigger::kWarmStandby);
  rpc::RpcRequest put;
  put.op = rpc::Op::kPut;
  put.path = path;
  put.payload = contents;  // refcounted share across the fanout
  put.client_node = self_;
  put.replica_generation = target.generation;
  if (membership_ != nullptr) membership_->stamp_request(put);

  if (target.write_class == placement::WriteClass::kSyncInline) {
    // Best effort: a slow/dead backup only costs durability, not
    // correctness, so a timeout here feeds the detector but is not
    // retried.
    auto result =
        transport_.call(backup, std::move(put), config_.rpc_timeout);
    if (result.is_ok()) {
      ingest_membership(result.value());
      observe_load_hint(backup, result.value());
      detector_.record_success(backup);
      if (result.value().code == StatusCode::kFencedEpoch) {
        // Write fence: our epoch lagged the server's.  The stamped
        // response just fast-forwarded us (ingest above); unmark so the
        // next read re-plans the standby against the healed ring.  No
        // replica was placed, so replicas_pushed stays untouched.
        ++stats_.fenced_puts;
        if (warm) warm_pushed_.erase(path);
        return;
      }
      ++stats_.replicas_pushed;
      if (warm) {
        if (result.value().code == StatusCode::kOk) {
          ++stats_.warm_pushes;
          if (warm_restore) ++stats_.warm_restores;
        } else if (result.value().code != StatusCode::kCancelled) {
          // Shed (kBusy/kCapacity/...): the standby is not placed; unmark
          // so a later read retries.  kCancelled means a FRESHER standby
          // already sits there — the marking stands.
          warm_pushed_.erase(path);
        }
      }
    } else if (result.status().code() == StatusCode::kTimeout) {
      on_timeout(backup);
      if (warm) warm_pushed_.erase(path);
    } else if (warm) {
      warm_pushed_.erase(path);
    }
    return;
  }

  // Write-behind: hot fanouts and warm standbys must not serialize the
  // read path behind fanout-1 synchronous puts.  The completion only
  // touches the refcounted mailbox/counter — never the client, which may
  // be gone by the time a put against a dead standby times out.
  if (warm) warm_inflight_->fetch_add(1, std::memory_order_relaxed);
  transport_.call_async(
      backup, std::move(put), config_.rpc_timeout,
      [mailbox = mailbox_, inflight = warm_inflight_, backup, warm,
       warm_restore, path](const StatusOr<rpc::RpcResponse>& result) {
        if (warm) inflight->fetch_sub(1, std::memory_order_relaxed);
        if (result.is_ok() && result.value().code == StatusCode::kOk) {
          mailbox->post(backup,
                        warm ? (warm_restore
                                    ? Mailbox::Kind::kWarmRestoreSuccess
                                    : Mailbox::Kind::kWarmSuccess)
                             : Mailbox::Kind::kFanoutSuccess,
                        warm ? path : std::string{});
        } else if (warm && result.is_ok() &&
                   result.value().code == StatusCode::kCancelled) {
          // Stale rejection: a fresher-generation standby already sits on
          // this node.  The server is healthy and the file covered — keep
          // the marking, count nothing.
          mailbox->post(backup, Mailbox::Kind::kRpcSuccess);
        } else if (result.is_ok() &&
                   result.value().code == StatusCode::kFencedEpoch) {
          mailbox->post(backup, Mailbox::Kind::kFencedPut, path);
        } else if (!result.is_ok() && timeout_like(result.status())) {
          mailbox->post(backup,
                        warm ? Mailbox::Kind::kWarmTimeout
                             : Mailbox::Kind::kRpcTimeout,
                        warm ? path : std::string{});
        } else {
          mailbox->post(backup,
                        warm ? Mailbox::Kind::kWarmShed
                             : Mailbox::Kind::kRpcSuccess,
                        warm ? path : std::string{});
        }
      });
}

void HvacClient::observe_load_hint(NodeId server,
                                   const rpc::RpcResponse& response) {
  // Gated on the client knobs, not just hint presence: a legacy-config
  // client talking to load-reporting servers must not grow an estimator
  // (its stats_snapshot must stay bit-identical to the seed's).
  if (!config_.bounded_load && hot_files_ == nullptr) return;
  if (!rpc::has_load_hint(response)) return;
  ++stats_.load_hints_observed;
  load_estimator_.observe(server, rpc::decode_load_hint(response.load_hint));
}

std::uint64_t HvacClient::placement_generation() const {
  if (membership_ != nullptr) return membership_->epoch();
  // Legacy mode has no epochs; the local ring-surgery counter moves
  // exactly when placement does (remove/reinstate/add_server).
  return stats_.ring_updates.load(std::memory_order_relaxed);
}

void HvacClient::maybe_invalidate_hot() {
  if (hot_files_ == nullptr) return;
  const std::uint64_t generation = placement_generation();
  if (generation == hot_generation_) return;
  hot_generation_ = generation;
  // The promotions' replica sets were owner chains of a ring that no
  // longer exists — a spread read could land on a node that never got
  // the kPut.  Drop them all; still-hot files re-promote against the new
  // ring within one decay interval.  Heat survives, so this is cheap.
  for (const std::string& path : hot_files_->invalidate_all()) {
    ++stats_.hot_invalidations;
    retire_hot_replicas(path, /*epoch_bump=*/true);
  }
}

void HvacClient::note_hot_access(const std::string& path) {
  if (hot_files_ == nullptr) return;
  maybe_invalidate_hot();
  if (hot_files_->record(path) == HotFilePromoter::Transition::kPromoted) {
    ++stats_.hot_promotions;
    // The kPut fanout needs the file's bytes, so it rides the next
    // successful read (accept_response) instead of fetching here.
    pending_hot_fanout_.insert(path);
    if (recorder_ != nullptr) {
      // Promotions are rare and explain every later spread/evict —
      // recorded unconditionally, like suspicions.
      recorder_->record_event(
          obs::RecordKind::kHotPromotion, obs::TraceContext{}, self_,
          static_cast<std::uint32_t>(StatusCode::kOk),
          hot_files_->promoted_count(), path);
    }
  }
  for (const std::string& cooled : hot_files_->take_demotions()) {
    ++stats_.hot_demotions;
    retire_hot_replicas(cooled, /*epoch_bump=*/false);
  }
}

void HvacClient::retire_hot_replicas(const std::string& path,
                                     bool epoch_bump) {
  pending_hot_fanout_.erase(path);
  if (recorder_ != nullptr) {
    recorder_->record_event(
        obs::RecordKind::kHotDemotion, obs::TraceContext{}, self_,
        static_cast<std::uint32_t>(epoch_bump ? StatusCode::kUnavailable
                                              : StatusCode::kOk),
        0, path);
  }
  // Best-effort teardown of the backups (the primary keeps its copy — it
  // owns the file either way).  Stale replicas only waste NVMe: reads
  // stop spreading the moment the promotion is gone, so eviction is
  // async and never retried.  After an epoch bump this aims at the NEW
  // chain; old members that left the ring took their cache with them.
  const auto chain = replica_chain(path, config_.hot_replica_fanout);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const NodeId backup = chain[i];
    if (excluded_for_data(backup)) continue;
    rpc::RpcRequest evict;
    evict.op = rpc::Op::kEvict;
    evict.path = path;
    evict.client_node = self_;
    if (membership_ != nullptr) membership_->stamp_request(evict);
    transport_.call_async(
        backup, std::move(evict), config_.rpc_timeout,
        [mailbox = mailbox_, backup](const StatusOr<rpc::RpcResponse>& result) {
          mailbox->post(backup,
                        !result.is_ok() && timeout_like(result.status())
                            ? Mailbox::Kind::kRpcTimeout
                            : Mailbox::Kind::kRpcSuccess);
        });
  }
}

NodeId HvacClient::pick_read_target(const std::string& path,
                                    const obs::TraceContext& trace) {
  const NodeId plain = resolve_owner(path);
  if (plain == ring::kInvalidNode ||
      config_.mode != FtMode::kHashRingRecache) {
    return plain;
  }
  // Hot file: power-of-two-choices over its replica set — two random
  // distinct members, route to the lower load estimate.  P2C (not
  // full-argmin) so co-located clients with near-identical load views
  // do not herd onto the same momentarily-coolest replica.
  if (hot_files_ != nullptr && hot_files_->is_promoted(path)) {
    std::vector<NodeId> set =
        replica_chain(path, config_.hot_replica_fanout);
    set.erase(std::remove_if(set.begin(), set.end(),
                             [this, plain](NodeId node) {
                               return node != plain &&
                                      excluded_for_data(node);
                             }),
              set.end());
    if (set.size() >= 2) {
      std::size_t a = spread_rng_.below(set.size());
      std::size_t b = spread_rng_.below(set.size() - 1);
      if (b >= a) ++b;
      ++stats_.load_spread_reads;
      return load_estimator_.load(set[a]) <= load_estimator_.load(set[b])
                 ? set[a]
                 : set[b];
    }
  }
  if (!config_.bounded_load) return plain;
  const auto excluded = [this](NodeId node) {
    return excluded_for_data(node);
  };
  const auto overloaded = [this](NodeId node) {
    return load_estimator_.overloaded(node, config_.bounded_load_c);
  };
  // Primary + up to max_spill spill candidates, resolved against the
  // epoch'd view when membership is attached so clients sharing an epoch
  // walk identical candidate chains.
  const std::size_t candidates = 1 + config_.bounded_load_max_spill;
  ring::ConsistentHashRing::BoundedLookup lookup;
  if (membership_ != nullptr) {
    lookup = membership_->ring_view()->owner_bounded(path, candidates,
                                                     excluded, overloaded);
  } else if (ring_view_ != nullptr) {
    lookup = ring_view_->owner_of_hash_bounded(
        ring_view_->key_position(path), candidates, excluded, overloaded);
  } else {
    return plain;
  }
  if (lookup.chosen == ring::kInvalidNode) return plain;
  if (lookup.spilled()) {
    ++stats_.spilled_reads;
    if (recorder_ != nullptr && trace.sampled) {
      recorder_->record_event(
          obs::RecordKind::kLoadSpill, trace.child(), lookup.primary,
          static_cast<std::uint32_t>(StatusCode::kOk), lookup.chosen, path);
    }
  }
  return lookup.chosen;
}

void HvacClient::on_timeout(NodeId owner) {
  ++stats_.timeouts;
  if (detector_.record_timeout(owner)) {
    ++stats_.nodes_flagged;
    FTC_LOG(kInfo, "hvac_client")
        << "client " << self_ << " takes node " << owner
        << " out of service: " << node_health_name(detector_.health(owner))
        << " (" << ft_mode_name(config_.mode) << ")";
    if (recorder_ != nullptr) {
      // Timeline marker, not a span: suspicions are rare and load-bearing
      // for the storm postmortem, so they are recorded regardless of
      // per-read sampling.
      recorder_->record_event(
          obs::RecordKind::kSuspicion, obs::TraceContext{}, owner,
          static_cast<std::uint32_t>(StatusCode::kTimeout), self_,
          membership_ != nullptr ? "report" : "flag");
    }
    if (membership_ != nullptr) {
      // The detector's verdict is local *evidence*, not a placement
      // decision: report the node suspect and let the cluster confirm or
      // refute.  Routing skips it meanwhile via excluded_for_data; the
      // shared ring changes only when an epoch event confirms.
      ++stats_.suspicions_reported;
      membership_->suspect(owner);
      return;
    }
    if (config_.mode == FtMode::kHashRingRecache) {
      // Elastic recaching: drop the node's virtual nodes; its keys fall
      // to the clockwise successors from the next lookup on.  If the node
      // is merely in probation a successful probe adds them back.
      placement_->remove_node(owner);
      ++stats_.ring_updates;
      if (recorder_ != nullptr) {
        recorder_->record_event(
            obs::RecordKind::kRingUpdate, obs::TraceContext{}, owner,
            static_cast<std::uint32_t>(membership::RingEventType::kProbation),
            stats_.ring_updates.load(std::memory_order_relaxed), "remove");
      }
    }
  }
}

std::chrono::milliseconds HvacClient::attempt_timeout(
    rpc::DeadlineNs deadline) const {
  if (deadline == rpc::kNoDeadline) return config_.rpc_timeout;
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      rpc::deadline_remaining(deadline));
  return std::clamp(remaining, std::chrono::milliseconds{1},
                    config_.rpc_timeout);
}

bool HvacClient::spend_retry_token() {
  if (retry_budget_.try_spend()) return true;
  ++stats_.retries_denied_by_budget;
  return false;
}

void HvacClient::handle_busy(NodeId server,
                             const rpc::RpcResponse& response) {
  ++stats_.busy_rejections;
  // A kBusy answer proves the node is alive and fast — it is liveness
  // evidence for the detector, and deliberately NOT a latency sample (a
  // rejection says nothing about service time) and NOT a timeout (a node
  // shedding load must never accrue suspicion for answering honestly).
  detector_.record_success(server);
  ingest_membership(response);
  // A shed carries the load hint too — precisely the moment the load
  // view most needs updating (spill decisions route around this node).
  observe_load_hint(server, response);
  // The retry this shed provokes is server-DIRECTED, not speculative:
  // the server rate-limits it via retry_after and the deadline bounds it.
  // It must not drain the retry budget — a drained bucket diverts reads
  // to the direct-PFS fallback, i.e. admission control would be funnelling
  // load onto the very filesystem it exists to protect.
  retry_is_server_directed_ = true;
}

void HvacClient::busy_backoff(std::uint32_t retry_after_ms,
                              std::size_t attempt,
                              rpc::DeadlineNs deadline) {
  // Jittered exponential: base * 2^attempt in [cap/2, cap], jitter drawn
  // in [0.5, 1) so synchronized clients spread out instead of re-bursting.
  const std::size_t shift = std::min<std::size_t>(attempt, 20);
  const std::int64_t scaled_ms = std::min<std::int64_t>(
      config_.busy_backoff_base.count() << shift,
      config_.busy_backoff_cap.count());
  auto wait = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(
          static_cast<double>(scaled_ms) * backoff_rng_.uniform(0.5, 1.0)));
  // The server's hint is a floor: it knows its backlog, we do not.
  wait = std::max(wait, std::chrono::nanoseconds(
                            std::chrono::milliseconds(retry_after_ms)));
  if (deadline != rpc::kNoDeadline) {
    // Never sleep past the point where the read would give up anyway.
    wait = std::min(wait, rpc::deadline_remaining(deadline));
  }
  if (wait > std::chrono::nanoseconds::zero()) {
    std::this_thread::sleep_for(wait);
  }
}

void HvacClient::drain_mailbox() {
  for (Mailbox::Event& event : mailbox_->drain()) {
    switch (event.kind) {
      case Mailbox::Kind::kRpcSuccess:
        detector_.record_success(event.node);
        break;
      case Mailbox::Kind::kRpcTimeout:
        on_timeout(event.node);
        break;
      case Mailbox::Kind::kProbeSuccess:
        if (detector_.record_probe_success(event.node)) {
          reinstate(event.node);
        }
        break;
      case Mailbox::Kind::kProbeFailure:
        detector_.record_probe_failure(event.node);
        break;
      case Mailbox::Kind::kFanoutSuccess:
        detector_.record_success(event.node);
        ++stats_.replicas_pushed;
        break;
      case Mailbox::Kind::kWarmSuccess:
        detector_.record_success(event.node);
        ++stats_.replicas_pushed;
        ++stats_.warm_pushes;
        break;
      case Mailbox::Kind::kWarmRestoreSuccess:
        detector_.record_success(event.node);
        ++stats_.replicas_pushed;
        ++stats_.warm_pushes;
        ++stats_.warm_restores;
        break;
      case Mailbox::Kind::kWarmShed:
        // The standby is alive but refused the bytes (admission shed):
        // unmark so the next read of the file retries the placement.
        detector_.record_success(event.node);
        warm_pushed_.erase(event.path);
        break;
      case Mailbox::Kind::kWarmTimeout:
        on_timeout(event.node);
        warm_pushed_.erase(event.path);
        break;
      case Mailbox::Kind::kPrefetchHit:
        detector_.record_success(event.node);
        ++stats_.prefetch_hits;
        staged_prefetch_[event.path] =
            StagedPrefetch{std::move(event.payload), event.generation};
        issue_prefetch_pulls();
        break;
      case Mailbox::Kind::kPrefetchMiss:
        detector_.record_success(event.node);
        // With p2p on, the owner lacking the bytes is not the end: a warm
        // standby one hop down the chain may hold them.
        if (peer_policy_ == nullptr ||
            event.hop + 1 >=
                std::max<std::uint32_t>(2, config_.replication.factor) ||
            !issue_prefetch_pull(event.path, event.hop + 1)) {
          ++stats_.prefetch_misses;
        }
        issue_prefetch_pulls();
        break;
      case Mailbox::Kind::kPrefetchBusy:
        detector_.record_success(event.node);
        ++stats_.prefetch_deferred;
        issue_prefetch_pulls();
        break;
      case Mailbox::Kind::kPrefetchTimeout:
        on_timeout(event.node);
        // Re-queue at the back: by the time it reissues, ring surgery has
        // moved ownership to the successor (the kill-recovery path).
        prefetch_pending_.push_back(std::move(event.path));
        issue_prefetch_pulls();
        break;
      case Mailbox::Kind::kFencedPut:
        // A fence is liveness proof (the server inspected the epoch and
        // answered), never a fault signal.  Unmark the path so the next
        // read re-plans its standbys against the current ring.
        detector_.record_success(event.node);
        warm_pushed_.erase(event.path);
        ++stats_.fenced_puts;
        break;
    }
  }
}

void HvacClient::maybe_probe() {
  if (config_.mode != FtMode::kHashRingRecache || !config_.reinstatement) {
    return;
  }
  // Membership mode: reinstatement is cluster-wide (SWIM refutation ->
  // kReinstate epoch event -> detector reset), not per-client probing.
  if (membership_ != nullptr) return;
  for (const NodeId node : detector_.probe_candidates()) {
    detector_.record_probe_launch(node);
    ++stats_.probes_sent;
    rpc::RpcRequest probe;
    probe.op = rpc::Op::kPing;
    probe.client_node = self_;
    // The completion only touches the refcounted mailbox — never the
    // client, which may be gone by the time a probe against a dead node
    // times out.
    transport_.call_async(
        node, std::move(probe), config_.rpc_timeout,
        [mailbox = mailbox_, node](const StatusOr<rpc::RpcResponse>& result) {
          bool up = false;
          if (result.is_ok()) up = result.value().code == StatusCode::kOk;
          mailbox->post(node, up ? Mailbox::Kind::kProbeSuccess
                                 : Mailbox::Kind::kProbeFailure);
        });
  }
}

void HvacClient::reinstate(NodeId node) {
  // The same elastic path a newly joined server takes (add_server): only
  // the node's old arc moves back, and each key recaches on first touch.
  placement_->add_node(node);
  ++stats_.ring_updates;
  ++stats_.nodes_reinstated;
  if (recorder_ != nullptr) {
    recorder_->record_event(
        obs::RecordKind::kRingUpdate, obs::TraceContext{}, node,
        static_cast<std::uint32_t>(membership::RingEventType::kReinstate),
        stats_.ring_updates.load(std::memory_order_relaxed), "reinstate");
  }
  FTC_LOG(kInfo, "hvac_client")
      << "client " << self_ << " reinstates node " << node
      << " after successful probe";
}

void HvacClient::prefetch_epoch(const std::vector<std::string>& upcoming) {
  if (!config_.prefetch.enabled) return;
  drain_mailbox();
  // A new epoch obsoletes pulls still queued for the previous one (the
  // shuffle may never revisit those files); pulls already in flight are
  // left to land — staged bytes stay useful if the file repeats.
  const std::uint64_t deferred = prefetch_pending_.size();
  stats_.prefetch_deferred += deferred;
  prefetch_pending_.clear();
  const prefetch::PrefetchPlan plan = prefetch_planner_.plan(
      upcoming, self_,
      [this](const std::string& path) { return resolve_owner(path); },
      [this](const std::string& path) {
        return staged_prefetch_.find(path) != staged_prefetch_.end();
      });
  stats_.prefetch_planned += plan.pulls.size();
  if (recorder_ != nullptr) {
    recorder_->record_event(
        obs::RecordKind::kPrefetchPlan, obs::TraceContext{}, self_,
        static_cast<std::uint32_t>(deferred > 0 ? StatusCode::kCancelled
                                                : StatusCode::kOk),
        plan.pulls.size(), "plan");
  }
  prefetch_pending_.assign(plan.pulls.begin(), plan.pulls.end());
  issue_prefetch_pulls();
}

void HvacClient::drain_prefetch() {
  if (!config_.prefetch.enabled) return;
  // The transport enforces per-call deadlines, so this converges on its
  // own; the cap is purely a hang safeguard.
  const auto give_up = rpc::Clock::now() + std::chrono::seconds(30);
  for (;;) {
    drain_mailbox();
    if (prefetch_pending_.empty() &&
        prefetch_inflight_->load(std::memory_order_acquire) == 0) {
      // The callbacks post before decrementing, so a zero counter means
      // every outcome has been mailed — but possibly after the drain
      // above.  One final sweep picks up that tail.
      drain_mailbox();
      if (prefetch_pending_.empty() &&
          prefetch_inflight_->load(std::memory_order_acquire) == 0) {
        return;
      }
      continue;  // the sweep re-queued a timeout or issued a p2p hop
    }
    if (rpc::Clock::now() > give_up) return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void HvacClient::issue_prefetch_pulls() {
  while (!prefetch_pending_.empty() &&
         prefetch_inflight_->load(std::memory_order_relaxed) <
             config_.prefetch.depth) {
    const std::string path = std::move(prefetch_pending_.front());
    prefetch_pending_.pop_front();
    if (staged_prefetch_.find(path) != staged_prefetch_.end()) continue;
    if (!issue_prefetch_pull(path, /*hop=*/0)) {
      // Placement moved under the plan (now self-owned, or no live
      // target): drop the pull, the demand path covers the file.
      ++stats_.prefetch_deferred;
    }
  }
}

bool HvacClient::issue_prefetch_pull(const std::string& path,
                                     std::uint32_t hop) {
  // Re-resolve at issue time, not plan time: the deque may outlive ring
  // surgery.  Hop 0 is the current owner; deeper hops walk the replica
  // chain (warm standbys) when the p2p fallback is on.
  NodeId target = ring::kInvalidNode;
  if (hop == 0) {
    target = resolve_owner(path);
  } else {
    const auto chain = replica_chain(path, hop + 1);
    if (chain.size() > hop) target = chain[hop];
  }
  if (target == ring::kInvalidNode || target == self_ ||
      excluded_for_data(target)) {
    return false;
  }
  rpc::RpcRequest request;
  request.op = rpc::Op::kPeerGet;
  request.path = path;
  request.client_node = self_;
  if (membership_ != nullptr) membership_->stamp_request(request);
  ++stats_.prefetch_pulls;
  prefetch_inflight_->fetch_add(1, std::memory_order_relaxed);
  const bool verify = config_.verify_checksums;
  // The completion only touches the refcounted mailbox/counter — never
  // the client, which may be gone by the time a pull against a dead peer
  // times out.
  transport_.call_async(
      target, std::move(request), config_.rpc_timeout,
      [mailbox = mailbox_, inflight = prefetch_inflight_, target, path, hop,
       verify](StatusOr<rpc::RpcResponse> result) {
        if (result.is_ok() && result.value().code == StatusCode::kOk) {
          rpc::RpcResponse response = std::move(result).value();
          if (verify &&
              hash::crc32(response.payload.view()) != response.checksum) {
            // Corrupted in flight: drop the bytes, the demand read
            // re-fetches with its own integrity check.
            mailbox->post({target, Mailbox::Kind::kPrefetchMiss, path,
                           common::Buffer{}, 0, hop});
          } else {
            mailbox->post({target, Mailbox::Kind::kPrefetchHit, path,
                           std::move(response.payload),
                           response.replica_generation, hop});
          }
        } else if (result.is_ok() &&
                   result.value().code == StatusCode::kNotFound) {
          mailbox->post({target, Mailbox::Kind::kPrefetchMiss, path,
                         common::Buffer{}, 0, hop});
        } else if (!result.is_ok() && timeout_like(result.status())) {
          mailbox->post({target, Mailbox::Kind::kPrefetchTimeout, path,
                         common::Buffer{}, 0, hop});
        } else {
          // kBusy or another live-node answer: background work defers to
          // foreground load rather than retrying into the shed.
          mailbox->post({target, Mailbox::Kind::kPrefetchBusy, path});
        }
        // Decrement strictly AFTER the post: inflight == 0 then implies
        // every outcome is in the mailbox (drain_prefetch's exit sweep
        // relies on this ordering to never strand a staged payload).
        inflight->fetch_sub(1, std::memory_order_release);
      });
  return true;
}

StatusOr<common::Buffer> HvacClient::peer_rescue(
    const std::string& path, rpc::DeadlineNs deadline,
    const obs::TraceContext& trace) {
  const auto chain =
      replica_chain(path, std::max<std::size_t>(2, config_.replication.factor));
  for (const NodeId peer : chain) {
    if (peer == self_ || excluded_for_data(peer)) continue;
    rpc::RpcRequest request;
    request.op = rpc::Op::kPeerGet;
    request.path = path;
    request.client_node = self_;
    request.deadline_ns = deadline;
    if (membership_ != nullptr) membership_->stamp_request(request);
    auto result =
        transport_.call(peer, std::move(request), attempt_timeout(deadline));
    if (!result.is_ok()) {
      if (timeout_like(result.status())) on_timeout(peer);
      continue;
    }
    rpc::RpcResponse response = std::move(result).value();
    ingest_membership(response);
    observe_load_hint(peer, response);
    detector_.record_success(peer);
    if (response.code != StatusCode::kOk) continue;  // kNotFound/kBusy
    if (config_.verify_checksums &&
        hash::crc32(response.payload.view()) != response.checksum) {
      ++stats_.checksum_failures;
      continue;
    }
    ++stats_.p2p_rescues;
    stats_.p2p_bytes += response.payload.size();
    if (recorder_ != nullptr) {
      recorder_->record_event(
          obs::RecordKind::kPeerRecache,
          trace.sampled ? trace.child() : obs::TraceContext{}, self_,
          static_cast<std::uint32_t>(StatusCode::kOk), peer, path);
    }
    // Heal the authoritative owner node-to-node: the PeerRecachePolicy
    // plan carries the serving peer's generation-ledger stamp and rides
    // the unified push, merging with any warm-standby placement owed.
    const std::function<bool(NodeId)> excluded = [this](NodeId node) {
      return excluded_for_data(node);
    };
    placement::PlanContext ctx;
    ctx.path = path;
    ctx.primary = peer;  // the node that already holds the bytes
    ctx.generation = response.replica_generation;
    ctx.chain = &chain;
    ctx.excluded = &excluded;
    const placement::ReplicaPlan heal = peer_policy_->plan(ctx);
    push_replicas(path, response.payload, peer, /*cache_fill=*/false, &heal);
    return std::move(response.payload);
  }
  return Status::not_found("no peer holds " + path);
}

StatusOr<common::Buffer> HvacClient::accept_response(
    const std::string& path, NodeId server, rpc::RpcResponse response) {
  // Fold piggybacked gossip / stale-view delta FIRST: anything placed
  // below (replicas) must use the freshest view this response affords.
  ingest_membership(response);
  observe_load_hint(server, response);
  if (response.code == StatusCode::kOk) {
    detector_.record_success(server);
    // Successful traffic funds future retries/hedges (no-op with the
    // budget off).
    retry_budget_.record_success();
    // End-to-end integrity: always a fresh CRC pass over the received
    // bytes (never the server's memoized value) so wire corruption is
    // actually exercised.
    if (config_.verify_checksums &&
        hash::crc32(response.payload.view()) != response.checksum) {
      ++stats_.checksum_failures;
      return Status::internal("checksum mismatch for " + path);
    }
    if (response.cache_hit) {
      ++stats_.served_remote_cache;
    } else {
      ++stats_.served_remote_fetch;
    }
    // Replica placement — every firing policy (miss-recache on a fill,
    // hot fanout on the first post-promotion read, warm standby whenever
    // coverage is missing or stale) plans against one shared chain walk
    // and the target sets are deduped per node.
    push_replicas(path, response.payload, server, !response.cache_hit);
    return std::move(response.payload);
  }
  // Server answered with an application error (e.g. file missing from
  // PFS entirely): not a fault signal, surface it.
  detector_.record_success(server);
  return Status(response.code, "server " + std::to_string(server) +
                                   " error for " + path);
}

std::optional<StatusOr<common::Buffer>> HvacClient::hedged_attempt(
    const std::string& path, NodeId owner, rpc::DeadlineNs deadline,
    const obs::TraceContext& trace) {
  auto wait = std::make_shared<HedgeWait>();
  const auto start = rpc::Clock::now();
  const auto leg_timeout = attempt_timeout(deadline);

  // Leg spans are recorded from the transport-pool completion callbacks
  // (the legs outlive this function on the slow paths), so the recorder
  // pointer rides the capture; null when this read is unsampled.
  obs::FlightRecorder* const recorder =
      (recorder_ != nullptr && trace.sampled) ? recorder_ : nullptr;

  rpc::RpcRequest request;
  request.op = rpc::Op::kReadFile;
  request.path = path;
  request.client_node = self_;
  // Both legs inherit the read's remaining budget: the server sheds
  // either leg unexecuted once the client has given the read up.
  request.deadline_ns = deadline;
  if (membership_ != nullptr) membership_->stamp_request(request);
  const obs::TraceContext primary_ctx =
      recorder != nullptr ? trace.child() : obs::TraceContext{};
  request.trace = primary_ctx;
  const std::int64_t primary_start =
      recorder != nullptr ? obs::now_ns() : 0;
  transport_.call_async(
      owner, request, leg_timeout,
      [wait, mailbox = mailbox_, owner, recorder, primary_ctx,
       primary_start](StatusOr<rpc::RpcResponse> result) {
        if (recorder != nullptr) {
          recorder->record_span(
              obs::RecordKind::kClientAttempt, primary_ctx, owner,
              primary_start, obs::now_ns(),
              static_cast<std::uint32_t>(result.is_ok()
                                             ? result.value().code
                                             : result.status().code()),
              0, "hedge_primary");
        }
        // A non-timeout error still proves the node is alive.
        mailbox->post(owner, !result.is_ok() && timeout_like(result.status())
                                 ? Mailbox::Kind::kRpcTimeout
                                 : Mailbox::Kind::kRpcSuccess);
        {
          std::lock_guard lock(wait->mutex);
          wait->primary = std::move(result);
        }
        wait->cv.notify_all();
      });

  const auto hedge_delay = current_hedge_delay();
  {
    std::unique_lock lock(wait->mutex);
    wait->cv.wait_for(lock, hedge_delay,
                      [&wait] { return wait->primary.has_value(); });
    if (wait->primary.has_value()) {
      // Fast path: the owner answered before the hedge was due — the
      // common case, identical to the unhedged read.
      auto result = std::move(*wait->primary);
      lock.unlock();
      drain_mailbox();  // folds this leg's success/timeout verdict
      if (result.is_ok() && result.value().code == StatusCode::kBusy) {
        // Shed, not served: back off (honoring the server's hint) and let
        // the retry loop re-attempt.  No latency sample — a rejection
        // says nothing about service time.
        handle_busy(owner, result.value());
        busy_backoff(result.value().retry_after_ms, /*attempt=*/0,
                     deadline);
        return std::nullopt;
      }
      if (result.is_ok()) {
        latency_.record(std::chrono::duration<double, std::micro>(
                            rpc::Clock::now() - start)
                            .count());
        return accept_response(path, owner, std::move(result).value());
      }
      if (timeout_like(result.status())) {
        return std::nullopt;  // retry loop: ring surgery already applied
      }
      return StatusOr<common::Buffer>(result.status());
    }
  }

  // Primary silent past the hedge delay.  A hedge leg is an extra attempt
  // and must be funded by the retry budget: when the bucket is dry (a
  // storm, by definition) hedging self-disables and we simply keep
  // waiting on the primary — racing a second node would double the very
  // load that is sinking the cluster.
  if (!spend_retry_token()) {
    std::unique_lock lock(wait->mutex);
    wait->cv.wait_for(lock, leg_timeout,
                      [&wait] { return wait->primary.has_value(); });
    if (!wait->primary.has_value()) return std::nullopt;
    auto result = std::move(*wait->primary);
    lock.unlock();
    drain_mailbox();
    if (result.is_ok() && result.value().code == StatusCode::kBusy) {
      handle_busy(owner, result.value());
      busy_backoff(result.value().retry_after_ms, /*attempt=*/0, deadline);
      return std::nullopt;
    }
    if (result.is_ok()) {
      return accept_response(path, owner, std::move(result).value());
    }
    if (timeout_like(result.status())) return std::nullopt;
    return StatusOr<common::Buffer>(result.status());
  }

  // Race the next distinct ring successor, or fall back to the PFS when
  // the ring has no one else.
  ++stats_.hedges_launched;
  NodeId hedge_target = ring::kInvalidNode;
  for (const NodeId candidate : replica_chain(path, 2)) {
    if (candidate != owner && !excluded_for_data(candidate)) {
      hedge_target = candidate;
      break;
    }
  }
  if (hedge_target == ring::kInvalidNode) {
    // The authoritative copy always exists; the primary's verdict arrives
    // later through the mailbox.
    ++stats_.hedges_to_pfs;
    return read_from_pfs(path, trace);
  }

  const obs::TraceContext hedge_ctx =
      recorder != nullptr ? trace.child() : obs::TraceContext{};
  request.trace = hedge_ctx;
  const std::int64_t hedge_start = recorder != nullptr ? obs::now_ns() : 0;
  transport_.call_async(
      hedge_target, std::move(request), leg_timeout,
      [wait, mailbox = mailbox_, hedge_target, recorder, hedge_ctx,
       hedge_start](StatusOr<rpc::RpcResponse> result) {
        if (recorder != nullptr) {
          recorder->record_span(
              obs::RecordKind::kHedgeLeg, hedge_ctx, hedge_target,
              hedge_start, obs::now_ns(),
              static_cast<std::uint32_t>(result.is_ok()
                                             ? result.value().code
                                             : result.status().code()),
              0, "hedge");
        }
        mailbox->post(hedge_target,
                      !result.is_ok() && timeout_like(result.status())
                          ? Mailbox::Kind::kRpcTimeout
                          : Mailbox::Kind::kRpcSuccess);
        {
          std::lock_guard lock(wait->mutex);
          wait->hedge = std::move(result);
        }
        wait->cv.notify_all();
      });

  // First success wins; prefer the primary when both answered.  The cap
  // covers both legs' RPC deadlines plus pool queueing slack — purely a
  // hang safeguard, the transport itself enforces per-call deadlines.
  const auto give_up = rpc::Clock::now() + 2 * leg_timeout +
                       std::chrono::microseconds(hedge_delay);
  bool primary_won = false;
  bool hedge_won = false;
  std::optional<StatusOr<rpc::RpcResponse>> winner;
  {
    std::unique_lock lock(wait->mutex);
    for (;;) {
      const bool primary_ok = wait->primary.has_value() &&
                              wait->primary->is_ok() &&
                              wait->primary->value().code == StatusCode::kOk;
      const bool hedge_ok = wait->hedge.has_value() && wait->hedge->is_ok() &&
                            wait->hedge->value().code == StatusCode::kOk;
      if (primary_ok) {
        winner = std::move(*wait->primary);
        primary_won = true;
        break;
      }
      if (hedge_ok) {
        winner = std::move(*wait->hedge);
        hedge_won = true;
        break;
      }
      if (wait->primary.has_value() && wait->hedge.has_value()) break;
      if (wait->cv.wait_until(lock, give_up) == std::cv_status::timeout) {
        break;
      }
    }
  }
  drain_mailbox();  // verdicts of whichever legs completed so far
  if (primary_won) {
    ++stats_.primary_wins_after_hedge;
    return accept_response(path, owner, std::move(*winner).value());
  }
  if (hedge_won) {
    ++stats_.hedge_wins;
    return accept_response(path, hedge_target, std::move(*winner).value());
  }
  // Neither leg succeeded.  A leg that was *shed* (kBusy) still needs its
  // bookkeeping — the node is alive, and its retry-after hint shapes the
  // backoff before the retry loop re-attempts.
  std::uint32_t busy_hint = 0;
  bool saw_busy = false;
  {
    std::lock_guard lock(wait->mutex);
    const auto fold_busy = [&](const std::optional<StatusOr<rpc::RpcResponse>>& leg,
                               NodeId node) {
      if (leg.has_value() && leg->is_ok() &&
          leg->value().code == StatusCode::kBusy) {
        handle_busy(node, leg->value());
        busy_hint = std::max(busy_hint, leg->value().retry_after_ms);
        saw_busy = true;
      }
    };
    fold_busy(wait->primary, owner);
    fold_busy(wait->hedge, hedge_target);
  }
  if (saw_busy) busy_backoff(busy_hint, /*attempt=*/0, deadline);
  // Let the retry loop re-resolve ownership — a failed owner is typically
  // out of the ring by now.
  return std::nullopt;
}

StatusOr<common::Buffer> HvacClient::read_file(const std::string& path) {
  ++stats_.reads;
  drain_mailbox();
  maybe_probe();

  // Sampling decision: every `sample_every`-th read gets a root span and
  // a sampled context that rides each attempt (the untraced path pays
  // exactly this null check).
  obs::TraceContext trace;
  std::int64_t trace_start = 0;
  if (recorder_ != nullptr && trace_sample_every_ != 0 &&
      trace_seq_++ % trace_sample_every_ == 0) {
    trace = obs::TraceContext::root();
    trace_start = obs::now_ns();
  }
  if (!trace.sampled) return read_file_impl(path, trace);
  auto result = read_file_impl(path, trace);
  recorder_->record_span(
      obs::RecordKind::kClientRead, trace, self_, trace_start, obs::now_ns(),
      static_cast<std::uint32_t>(result.is_ok() ? StatusCode::kOk
                                                : result.status().code()),
      0, path);
  return result;
}

StatusOr<common::Buffer> HvacClient::read_file_impl(
    const std::string& path, const obs::TraceContext& trace) {
  // Epoch-ahead fast path: a staged prefetch is consumed without any
  // network round trip (CRC was verified at pull completion).  One-shot
  // by design — the next epoch's planner re-pulls if the shuffle repeats
  // the file, and the ring owner remains authoritative throughout.
  if (!staged_prefetch_.empty()) {
    const auto staged = staged_prefetch_.find(path);
    if (staged != staged_prefetch_.end()) {
      ++stats_.prefetch_local_hits;
      common::Buffer payload = std::move(staged->second.payload);
      staged_prefetch_.erase(staged);
      return payload;
    }
  }
  const bool hedging = config_.hedge_reads &&
                       config_.mode == FtMode::kHashRingRecache;

  // The read's total budget, inherited by every attempt and hedge leg
  // (kNoDeadline with the knob off — legacy unbounded retries).
  const rpc::DeadlineNs deadline =
      config_.total_deadline.count() > 0
          ? rpc::deadline_in(config_.total_deadline)
          : rpc::kNoDeadline;

  // Bounded by the membership size: with R alive nodes a read can at worst
  // flag R owners in sequence before the PFS terminal fallback.
  const std::size_t max_attempts =
      (membership_ != nullptr ? membership_->ring_view()->node_count()
                              : placement_->node_count()) +
      1;
  retry_is_server_directed_ = false;
  // Hot-set bookkeeping once per read (not per attempt — retries of one
  // read are one access): ring-change invalidation, heat recording,
  // promotion/demotion transitions.
  note_hot_access(path);
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (rpc::deadline_expired(deadline)) {
      // Budget spent: give up rather than keep a storm-era request alive
      // past the point anyone wants its answer.
      ++stats_.deadline_give_ups;
      return Status::timeout("read budget exhausted for " + path);
    }
    // SPECULATIVE extra attempts must be funded; a dry bucket means the
    // cluster is drowning in retries already.  The authoritative copy
    // still exists — take the slow-but-safe path instead of amplifying.
    // Retries the server itself directed via kBusy+retry_after are exempt
    // (see handle_busy): they are paced by the hint and the deadline.
    const bool server_directed = retry_is_server_directed_;
    retry_is_server_directed_ = false;
    if (attempt > 0 && !server_directed && !spend_retry_token()) {
      break;
    }
    // Skew-tolerant target choice: p2c over a hot replica set, else a
    // bounded-load spill past an overloaded primary, else (and with the
    // knobs off, always) the plain single owner.
    const NodeId owner = pick_read_target(path, trace);
    if (owner == ring::kInvalidNode) {
      // Every cache server is gone; the PFS is the only copy left.
      return config_.mode == FtMode::kNone
                 ? StatusOr<common::Buffer>(
                       Status::unavailable("no cache servers alive"))
                 : read_from_pfs(path, trace);
    }

    if (membership_ == nullptr && detector_.is_out_of_service(owner)) {
      // Only the PFS-redirect mode can still map keys to a flagged node
      // (its placement is immutable); the ring modes removed it already.
      if (config_.mode == FtMode::kPfsRedirect)
        return read_from_pfs(path, trace);
      if (config_.mode == FtMode::kNone) {
        return Status::unavailable("owner " + std::to_string(owner) +
                                   " failed and NoFT cannot recover");
      }
      // Defensive: ring mode should never get here; fall through to retry
      // after removing the node.
      placement_->remove_node(owner);
      continue;
    }

    if (hedging) {
      auto outcome = hedged_attempt(path, owner, deadline, trace);
      if (outcome.has_value()) return std::move(*outcome);
      continue;
    }

    rpc::RpcRequest request;
    request.op = rpc::Op::kReadFile;
    request.path = path;
    request.client_node = self_;
    request.deadline_ns = deadline;
    if (membership_ != nullptr) membership_->stamp_request(request);
    const bool traced = recorder_ != nullptr && trace.sampled;
    obs::TraceContext attempt_ctx;
    std::int64_t attempt_start_ns = 0;
    if (traced) {
      attempt_ctx = trace.child();
      request.trace = attempt_ctx;
      attempt_start_ns = obs::now_ns();
    }
    const auto call_start = rpc::Clock::now();
    auto result = transport_.call(owner, std::move(request),
                                  attempt_timeout(deadline));
    if (traced) {
      const StatusCode code =
          result.is_ok() ? result.value().code : result.status().code();
      recorder_->record_span(
          server_directed ? obs::RecordKind::kBusyRetry
                          : obs::RecordKind::kClientAttempt,
          attempt_ctx, owner, attempt_start_ns, obs::now_ns(),
          static_cast<std::uint32_t>(code), attempt,
          attempt == 0 ? "primary"
                       : (server_directed ? "busy_retry" : "retry"));
    }

    if (result.is_ok() && result.value().code == StatusCode::kBusy) {
      // Shed, not served: alive-node bookkeeping, jittered backoff (never
      // below the server's hint, never past the deadline), then retry.
      // Deliberately no latency sample — see handle_busy.
      handle_busy(owner, result.value());
      busy_backoff(result.value().retry_after_ms, attempt, deadline);
      continue;
    }
    if (result.is_ok()) {
      latency_.record(std::chrono::duration<double, std::micro>(
                          rpc::Clock::now() - call_start)
                          .count());
      return accept_response(path, owner, std::move(result).value());
    }

    const Status& status = result.status();
    if (timeout_like(status)) {
      on_timeout(owner);
      switch (config_.mode) {
        case FtMode::kNone:
          return Status::timeout("node " + std::to_string(owner) +
                                 " unresponsive; NoFT aborts");
        case FtMode::kPfsRedirect:
          // Per Fig 3(a): the timed-out request itself is redirected.
          return read_from_pfs(path, trace);
        case FtMode::kHashRingRecache:
          // Retry: if the node was flagged the ring changed; otherwise the
          // same owner gets another chance (transient delay).
          continue;
      }
    }
    return status;  // unexpected transport error
  }
  // Retries exhausted without a verdict.  With p2p recache on, the
  // replica chain gets one last node-to-node chance (a warm standby often
  // still holds the bytes mid-storm) before paying the PFS.
  if (peer_policy_ != nullptr) {
    auto rescued = peer_rescue(path, deadline, trace);
    if (rescued.is_ok()) return rescued;
  }
  // Serve the authoritative copy.
  return read_from_pfs(path, trace);
}

}  // namespace ftc::cluster
