#include "cluster/hvac_client.hpp"

#include <utility>

#include "common/logging.hpp"
#include "hash/crc32.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "ring/static_modulo.hpp"

namespace ftc::cluster {

const char* ft_mode_name(FtMode mode) {
  switch (mode) {
    case FtMode::kNone: return "NoFT";
    case FtMode::kPfsRedirect: return "FT w/ PFS";
    case FtMode::kHashRingRecache: return "FT w/ NVMe";
  }
  return "?";
}

HvacClient::HvacClient(NodeId self, rpc::Transport& transport, PfsStore& pfs,
                       const std::vector<NodeId>& servers,
                       const HvacClientConfig& config)
    : self_(self), transport_(transport), pfs_(pfs), config_(config),
      detector_(config.timeout_limit) {
  if (config_.mode == FtMode::kHashRingRecache) {
    ring::RingConfig ring_config;
    ring_config.vnodes_per_node = config_.vnodes_per_node;
    ring_config.seed = config_.ring_seed;
    auto ring = std::make_unique<ring::ConsistentHashRing>(ring_config);
    for (NodeId node : servers) ring->add_node(node);
    ring_view_ = ring.get();
    placement_ = std::move(ring);
  } else {
    auto modulo = std::make_unique<ring::StaticModuloPlacement>();
    for (NodeId node : servers) modulo->add_node(node);
    placement_ = std::move(modulo);
  }
}

ring::NodeId HvacClient::current_owner(const std::string& path) const {
  return placement_->owner(path);
}

void HvacClient::add_server(NodeId node) {
  placement_->add_node(node);
}

Status HvacClient::ping(NodeId node) {
  rpc::RpcRequest request;
  request.op = rpc::Op::kPing;
  request.client_node = self_;
  const auto start = rpc::Clock::now();
  auto result = transport_.call(node, std::move(request),
                                config_.rpc_timeout);
  if (result.is_ok() && result.value().code == StatusCode::kOk) {
    latency_.record(std::chrono::duration<double, std::micro>(
                        rpc::Clock::now() - start)
                        .count());
    detector_.record_success(node);
    return Status::ok();
  }
  if (!result.is_ok() &&
      result.status().code() == StatusCode::kTimeout) {
    on_timeout(node);
    return result.status();
  }
  return result.is_ok() ? Status(result.value().code, "ping error")
                        : result.status();
}

std::chrono::milliseconds HvacClient::recommended_timeout(
    double margin) const {
  const double fallback_us =
      std::chrono::duration<double, std::micro>(config_.rpc_timeout).count();
  const double us = latency_.recommended_timeout(margin, 16, fallback_us);
  return std::chrono::milliseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(us / 1000.0)));
}

StatusOr<common::Buffer> HvacClient::read_from_pfs(const std::string& path) {
  ++stats_.served_pfs_direct;
  return pfs_.read(path);
}

void HvacClient::replicate(const std::string& path,
                           const common::Buffer& contents, NodeId primary) {
  if (config_.replication_factor <= 1 || ring_view_ == nullptr) return;
  const auto chain =
      ring_view_->owner_chain(path, config_.replication_factor);
  for (const ring::NodeId backup : chain) {
    if (backup == primary || detector_.is_failed(backup)) continue;
    rpc::RpcRequest put;
    put.op = rpc::Op::kPut;
    put.path = path;
    put.payload = contents;
    put.client_node = self_;
    // Best effort: a slow/dead backup only costs durability, not
    // correctness, so a timeout here feeds the detector but is not
    // retried.
    auto result = transport_.call(backup, std::move(put),
                                  config_.rpc_timeout);
    if (result.is_ok()) {
      detector_.record_success(backup);
      ++stats_.replicas_pushed;
    } else if (result.status().code() == StatusCode::kTimeout) {
      on_timeout(backup);
    }
  }
}

void HvacClient::on_timeout(NodeId owner) {
  ++stats_.timeouts;
  if (detector_.record_timeout(owner)) {
    ++stats_.nodes_flagged;
    FTC_LOG(kInfo, "hvac_client")
        << "client " << self_ << " flags node " << owner << " as FAILED ("
        << ft_mode_name(config_.mode) << ")";
    if (config_.mode == FtMode::kHashRingRecache) {
      // Elastic recaching: drop the dead node's virtual nodes; its keys
      // fall to the clockwise successors from the next lookup on.
      placement_->remove_node(owner);
      ++stats_.ring_updates;
    }
  }
}

StatusOr<common::Buffer> HvacClient::read_file(const std::string& path) {
  ++stats_.reads;

  // Bounded by the membership size: with R alive nodes a read can at worst
  // flag R owners in sequence before the PFS terminal fallback.
  const std::size_t max_attempts = placement_->node_count() + 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const ring::NodeId owner = placement_->owner(path);
    if (owner == ring::kInvalidNode) {
      // Every cache server is gone; the PFS is the only copy left.
      return config_.mode == FtMode::kNone
                 ? StatusOr<common::Buffer>(
                       Status::unavailable("no cache servers alive"))
                 : read_from_pfs(path);
    }

    if (detector_.is_failed(owner)) {
      // Only the PFS-redirect mode can still map keys to a flagged node
      // (its placement is immutable); the ring modes removed it already.
      if (config_.mode == FtMode::kPfsRedirect) return read_from_pfs(path);
      if (config_.mode == FtMode::kNone) {
        return Status::unavailable("owner " + std::to_string(owner) +
                                   " failed and NoFT cannot recover");
      }
      // Defensive: ring mode should never get here; fall through to retry
      // after removing the node.
      placement_->remove_node(owner);
      continue;
    }

    rpc::RpcRequest request;
    request.op = rpc::Op::kReadFile;
    request.path = path;
    request.client_node = self_;
    const auto call_start = rpc::Clock::now();
    auto result = transport_.call(owner, std::move(request),
                                  config_.rpc_timeout);

    if (result.is_ok()) {
      latency_.record(std::chrono::duration<double, std::micro>(
                          rpc::Clock::now() - call_start)
                          .count());
      rpc::RpcResponse response = std::move(result).value();
      if (response.code == StatusCode::kOk) {
        detector_.record_success(owner);
        // End-to-end integrity: always a fresh CRC pass over the received
        // bytes (never the server's memoized value) so wire corruption is
        // actually exercised.
        if (config_.verify_checksums &&
            hash::crc32(response.payload.view()) != response.checksum) {
          ++stats_.checksum_failures;
          return Status::internal("checksum mismatch for " + path);
        }
        if (response.cache_hit) {
          ++stats_.served_remote_cache;
        } else {
          ++stats_.served_remote_fetch;
          // First fetch of this file: place the backup copies now, while
          // the contents are in hand (replication extension).
          replicate(path, response.payload, owner);
        }
        return std::move(response.payload);
      }
      // Server answered with an application error (e.g. file missing from
      // PFS entirely): not a fault signal, surface it.
      detector_.record_success(owner);
      return Status(response.code, "server " + std::to_string(owner) +
                                       " error for " + path);
    }

    const Status& status = result.status();
    if (status.code() == StatusCode::kTimeout ||
        status.code() == StatusCode::kUnavailable ||
        status.code() == StatusCode::kCancelled) {
      // All three look identical from the application's viewpoint: the
      // node did not serve the request.
      on_timeout(owner);
      switch (config_.mode) {
        case FtMode::kNone:
          return Status::timeout("node " + std::to_string(owner) +
                                 " unresponsive; NoFT aborts");
        case FtMode::kPfsRedirect:
          // Per Fig 3(a): the timed-out request itself is redirected.
          return read_from_pfs(path);
        case FtMode::kHashRingRecache:
          // Retry: if the node was flagged the ring changed; otherwise the
          // same owner gets another chance (transient delay).
          continue;
      }
    }
    return status;  // unexpected transport error
  }
  // Retries exhausted without a verdict — serve the authoritative copy.
  return read_from_pfs(path);
}

}  // namespace ftc::cluster
