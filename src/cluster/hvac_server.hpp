// hvac_server.hpp - The per-node HVAC cache daemon (Sec II-B).
//
// One instance runs on every compute node.  On a read RPC it checks the
// node-local NVMe cache; a hit is served directly, a miss is fetched from
// the PFS, served, and handed to the data-mover pool which inserts it
// into the cache in the background — exactly the original HVAC flow.  The
// elastic-recaching design needs no server-side changes: a post-failure
// new owner simply sees a miss for the lost file and the normal
// fetch/serve/recache path restores it (one PFS access per lost file).
//
// Data path (zero-copy): payloads are ftc::common::Buffer — a cache hit
// hands out a reference to the stored bytes (no memcpy, CRC memoized per
// payload), and a miss shares one buffer between the RPC response and the
// recache task.  The cache itself is lock-striped (ShardedCacheStore), so
// concurrent reads of different files never serialize; server counters
// are lock-free atomics.  There is no server-wide mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cluster/fault_detector.hpp"  // NodeId
#include "cluster/pfs_guard.hpp"
#include "cluster/pfs_store.hpp"
#include "common/thread_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "placement/replication_policy.hpp"
#include "rpc/message.hpp"
#include "storage/sharded_cache_store.hpp"
#include "store/store_config.hpp"
#include "store/store_iface.hpp"
#include "store/tiered_store.hpp"

namespace ftc::membership {
class MembershipAgent;
}  // namespace ftc::membership

namespace ftc::cluster {

struct HvacServerConfig {
  /// NVMe capacity available for caching.
  std::uint64_t cache_capacity_bytes = 1ULL << 30;
  /// Victim selection when the dataset share exceeds the NVMe capacity.
  storage::EvictionPolicy eviction_policy = storage::EvictionPolicy::kLru;
  /// Lock stripes for the cache store (keys hashed across shards).
  std::size_t cache_shards = storage::ShardedCacheStore::kDefaultShards;
  /// Tiered RAM+NVMe store (the `store.tiering` knob).  Off = the three
  /// legacy cache knobs above govern a ShardedCacheStore, bit-for-bit.
  /// On = the server's cache is a TieredCacheStore configured entirely
  /// from this block (the legacy knobs are inert) — hot RAM tier, cold
  /// NVMe tier with demotion/promotion, watermark reclaim, and a
  /// generation-stamped manifest enabling warm restarts.
  ftc::store::StoreConfig store;
  /// When false, misses are cached inline before the response returns
  /// (deterministic mode for tests); when true, the data-mover pool does
  /// it in the background as in the original system.
  bool async_data_mover = true;
  /// Worker threads for the background recache pool (async mode only).
  std::size_t data_mover_threads = 1;

  // --- Failover-storm hardening (every knob defaults to the legacy
  // behaviour: no admission control, serial endpoint, no singleflight) ---

  /// Transport worker threads for this node's endpoint.  1 = the seed's
  /// serial endpoint; more lets concurrent requests actually contend,
  /// which both the storm experiments and singleflight coalescing need.
  std::size_t endpoint_workers = 1;
  /// Bound the endpoint's ingress queue (class-aware shedding in the
  /// transport: membership never shed, reads shed at the limit, recache
  /// writes at twice it).  Off = unbounded legacy queue.
  bool admission_control = false;
  std::size_t admission_queue_limit = 16;
  /// Base of the kBusy retry-after hint, scaled by queue overflow.
  std::uint32_t admission_retry_after_ms = 1;
  /// Coalesce concurrent first-touch misses for one path into a single
  /// PFS fetch, cap concurrent fetches, and breaker-protect the PFS.
  bool pfs_singleflight = false;
  PfsGuardOptions pfs_guard;

  // --- Skew-tolerant placement (defaults to the legacy silent wire) ----

  /// Piggyback a smoothed queue-depth estimate on every response
  /// (transport-level EWMA of ingress queue + in-flight handlers).  The
  /// server-side half of bounded-load lookup and hot-file load
  /// spreading: clients only ever spill or spread on hints, so with this
  /// off those knobs are inert.  Off = load_hint stays 0, bit-for-bit
  /// legacy responses.
  bool report_load = false;
  /// EWMA smoothing for the reported load.  Valid: in (0, 1].
  double load_report_alpha = 0.2;

  // --- Partition tolerance (defaults to the legacy open door) ---------

  /// Ring-epoch write fencing.  With `enabled`, a mutating RPC (kPut /
  /// kEvict) whose sender ring epoch lags this node's membership epoch is
  /// refused kFencedEpoch instead of being applied — a client on the
  /// minority side of a healed partition cannot smear placement decisions
  /// derived from a dead ring onto the majority's caches.  The refusal
  /// response is stamped like any stale-view answer, so the fenced client
  /// fast-forwards and retries against the current ring in one round
  /// trip.  Inert without an attached membership agent (legacy senders
  /// are kEpochUnaware and never fence).  Off = bit-for-bit legacy.
  struct FencingConfig {
    bool enabled = false;
  } fencing;

  /// Rejects contradictory knob combinations (used by HvacServer's
  /// throwing constructor; callers may also pre-validate).
  [[nodiscard]] Status validate() const;
};

class HvacServer {
 public:
  /// Throws std::invalid_argument when `config.validate()` rejects —
  /// misconfigured overload control must fail loudly at construction,
  /// not silently misprotect under the first storm.
  /// `device` is the node's NVMe volume for the tiered store: pass the
  /// cluster-owned instance so cold-tier bytes survive a server restart
  /// (warm rejoin), or nullptr for a private volume.  Ignored with
  /// `config.store.tiering` off.
  HvacServer(NodeId id, PfsStore& pfs, const HvacServerConfig& config,
             std::shared_ptr<ftc::store::NvmeDevice> device = nullptr);
  ~HvacServer();

  HvacServer(const HvacServer&) = delete;
  HvacServer& operator=(const HvacServer&) = delete;

  /// RPC dispatch; register with Transport as the node's handler.
  /// Thread-safe: may be called from many transport workers concurrently.
  rpc::RpcResponse handle(const rpc::RpcRequest& request);

  /// Attaches this node's membership agent (not owned; must outlive the
  /// server).  Once attached, handle() dispatches the SWIM verbs to it
  /// and every data response is epoch-stamped and carries piggybacked
  /// gossip — including the kStaleView fast-forward for lagging clients.
  /// Never attached in legacy mode, leaving behaviour bit-identical.
  void attach_membership(membership::MembershipAgent* agent) {
    membership_ = agent;
  }

  /// Attaches this node's flight recorder (not owned; must outlive the
  /// server).  Sampled requests then get a server-side span around
  /// dispatch plus shed events; the guard (if any) records the PFS
  /// singleflight legs.  Never attached = zero added work per request
  /// beyond one null check.
  void attach_observability(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
    if (pfs_guard_) pfs_guard_->set_observability(recorder, id_);
  }

  [[nodiscard]] NodeId id() const { return id_; }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t pfs_fetches = 0;
    std::uint64_t recache_enqueued = 0;
    std::uint64_t recache_completed = 0;
    std::uint64_t replicas_stored = 0;  ///< kPut backups accepted
    /// Of the accepted backups: generation-stamped warm standbys (warm
    /// failover extension; 0 with every legacy sender).
    std::uint64_t warm_replicas_stored = 0;
    /// Stamped kPuts refused kCancelled because a fresher generation of
    /// the same replica was already stored (replica freshness rule).
    std::uint64_t stale_replica_puts = 0;
    /// Payload bytes of accepted warm standbys (freshness telemetry).
    std::uint64_t warm_replica_bytes = 0;
    /// Bytes of payload memcpy'd on the serve path.  Stays 0 on the
    /// refcounted data path (hits share the cache entry's bytes; a miss
    /// shares one buffer between response and recache task); kept so
    /// bench_throughput can prove it and regressions show up as nonzero.
    std::uint64_t payload_bytes_copied = 0;
    std::uint64_t evictions = 0;        ///< cache evictions to date
    std::uint64_t used_bytes = 0;       ///< current cache occupancy
    /// Requests whose deadline had already passed on arrival — shed
    /// before dispatch, never executed.
    std::uint64_t expired_on_arrival = 0;
    /// Miss-path calls that shared another caller's in-flight PFS fetch
    /// (singleflight followers; 0 with the guard off).
    std::uint64_t pfs_coalesced = 0;
    /// Miss-path calls fast-rejected kBusy by the open PFS breaker.
    std::uint64_t pfs_breaker_open = 0;
    /// kPeerGet requests received (prefetch pulls + p2p rescues).  Cache-
    /// only by contract: a peer-get can never cause a PFS fetch.
    std::uint64_t peer_gets = 0;
    /// Of those, served from NVMe (the rest answered kNotFound).
    std::uint64_t peer_get_hits = 0;
    /// Payload bytes shipped node-to-node over kPeerGet.
    std::uint64_t peer_get_bytes = 0;
    /// Mutating RPCs refused kFencedEpoch because the sender's ring epoch
    /// lagged ours (fencing.enabled only).
    std::uint64_t fenced_writes = 0;
    /// Stale-epoch mutating RPCs *accepted* because fencing is off —
    /// the exposure the fence exists to close (0 with fencing on).
    std::uint64_t stale_epoch_puts_accepted = 0;
  };
  /// Value snapshot of the lock-free counters plus cache occupancy.  As
  /// with HvacClient, there is deliberately no reference accessor —
  /// counters cannot be mutated or observed torn from outside.
  [[nodiscard]] Stats stats_snapshot() const;

  /// Blocks until the data-mover pool drains (test synchronization).
  void flush_data_mover();

  /// Drops every cached entry (counters keep their history).  Models a
  /// node whose NVMe state was lost while it was out of service — the
  /// reinstatement experiments use it so a returning node must recache
  /// on first touch.
  void clear_cache();

  /// Cached-state inspection (telemetry / tests).
  [[nodiscard]] bool has_cached(const std::string& path) const;
  [[nodiscard]] std::size_t cached_file_count() const;
  [[nodiscard]] std::uint64_t cached_bytes() const;
  /// Whole-cache budget of whichever store is live (RAM+NVMe when
  /// tiered; the legacy knob otherwise).
  [[nodiscard]] std::uint64_t cache_capacity_bytes() const;

  // --- tiered store (store.tiering only; inert otherwise) --------------

  /// True when this server runs the tiered RAM+NVMe store.
  [[nodiscard]] bool tiered() const { return tiered_ != nullptr; }
  /// The tiered store itself (tests / bench introspection); nullptr with
  /// tiering off.
  [[nodiscard]] const ftc::store::TieredCacheStore* tiered_store() const {
    return tiered_;
  }
  /// Per-tier telemetry from whichever store is live (the legacy adapter
  /// reports everything in the RAM row).
  [[nodiscard]] ftc::store::StoreStats store_stats() const {
    return cache_->stats_snapshot();
  }

  /// Highest replica generation this node's freshness ledger has accepted
  /// for `path` (0 = never stamped).  The cluster harness aggregates this
  /// across alive nodes as the generation authority for warm restarts.
  [[nodiscard]] std::uint64_t replica_generation_of(
      const std::string& path) const;

  /// Warm rejoin: rebuilds the cold tier from the surviving device's
  /// manifest, dropping entries whose generation the authority says is
  /// stale, and seeds the freshness ledger from what survived.  Returns
  /// the number of entries restored; always 0 with tiering off.
  std::size_t warm_restore(
      const ftc::store::TieredCacheStore::GenerationAuthority& authority = {});

  /// Clean-shutdown flush: drains the data mover, then demotes every hot
  /// entry to the NVMe tier so the manifest covers the whole cache before
  /// a planned restart.  No-op with tiering off.
  void flush_cache_to_cold();

  /// The server's copy of its config (cluster wiring reads the endpoint/
  /// admission knobs from here when registering the node).
  [[nodiscard]] const HvacServerConfig& config() const { return config_; }

  /// Storm-protection telemetry; nullptr with pfs_singleflight off.
  [[nodiscard]] const PfsFetchGuard* pfs_guard() const {
    return pfs_guard_.get();
  }

 private:
  /// The membership-agnostic op switch handle() wraps.  dispatch() is a
  /// thin tracing shim around dispatch_impl (a kServerHandle span for
  /// sampled requests, a tail call otherwise).
  rpc::RpcResponse dispatch(const rpc::RpcRequest& request);
  rpc::RpcResponse dispatch_impl(const rpc::RpcRequest& request);
  rpc::RpcResponse handle_read(const rpc::RpcRequest& request);
  void recache(const std::string& path, const common::Buffer& contents);

  /// Lock-free counters (snapshotted by stats()).
  struct AtomicStats {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> pfs_fetches{0};
    std::atomic<std::uint64_t> recache_enqueued{0};
    std::atomic<std::uint64_t> recache_completed{0};
    std::atomic<std::uint64_t> replicas_stored{0};
    std::atomic<std::uint64_t> warm_replicas_stored{0};
    std::atomic<std::uint64_t> stale_replica_puts{0};
    std::atomic<std::uint64_t> warm_replica_bytes{0};
    std::atomic<std::uint64_t> payload_bytes_copied{0};
    std::atomic<std::uint64_t> expired_on_arrival{0};
    std::atomic<std::uint64_t> peer_gets{0};
    std::atomic<std::uint64_t> peer_get_hits{0};
    std::atomic<std::uint64_t> peer_get_bytes{0};
    std::atomic<std::uint64_t> fenced_writes{0};
    std::atomic<std::uint64_t> stale_epoch_puts_accepted{0};
  };

  NodeId id_;
  PfsStore& pfs_;
  HvacServerConfig config_;
  membership::MembershipAgent* membership_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  /// The cache behind the store interface: LegacyStoreAdapter (default,
  /// bit-for-bit the old ShardedCacheStore) or TieredCacheStore
  /// (store.tiering).  Both are internally synchronized.
  std::unique_ptr<ftc::store::StoreIface> cache_;
  /// Aliases cache_ when it is the tiered store; nullptr otherwise.
  ftc::store::TieredCacheStore* tiered_ = nullptr;
  AtomicStats stats_;
  /// The recache enqueue's write-class decision, expressed through the
  /// same ReplicationPolicy vocabulary the client's replica pushes use
  /// (the async_data_mover knob feeds it at construction).
  placement::LocalRecachePolicy recache_policy_;
  /// Replica-freshness ledger: highest stamped generation accepted per
  /// path.  Touched only for generation-stamped kPuts (warm standbys);
  /// the legacy unstamped path never takes this lock.
  mutable std::mutex generation_mu_;
  std::unordered_map<std::string, std::uint64_t> replica_generations_;
  /// Storm protection for the miss path; null when pfs_singleflight off
  /// (the miss path is then bit-identical to the seed's).
  std::unique_ptr<PfsFetchGuard> pfs_guard_;
  /// Declared last: destroyed first, so queued recache tasks (which touch
  /// cache_ and stats_) finish while those members are still alive.
  std::unique_ptr<common::ThreadPool> mover_pool_;
};

}  // namespace ftc::cluster
