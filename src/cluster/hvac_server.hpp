// hvac_server.hpp - The per-node HVAC cache daemon (Sec II-B).
//
// One instance runs on every compute node.  On a read RPC it checks the
// node-local NVMe cache; a hit is served directly, a miss is fetched from
// the PFS, served, and handed to the data-mover thread which copies it
// into the cache in the background — exactly the original HVAC flow.  The
// elastic-recaching design needs no server-side changes: a post-failure
// new owner simply sees a miss for the lost file and the normal
// fetch/serve/recache path restores it (one PFS access per lost file).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/fault_detector.hpp"  // NodeId
#include "cluster/pfs_store.hpp"
#include "rpc/message.hpp"
#include "storage/cache_store.hpp"

namespace ftc::cluster {

struct HvacServerConfig {
  /// NVMe capacity available for caching.
  std::uint64_t cache_capacity_bytes = 1ULL << 30;
  /// Victim selection when the dataset share exceeds the NVMe capacity.
  storage::EvictionPolicy eviction_policy = storage::EvictionPolicy::kLru;
  /// When false, misses are cached inline before the response returns
  /// (deterministic mode for tests); when true, a data-mover thread does
  /// it in the background as in the original system.
  bool async_data_mover = true;
};

class HvacServer {
 public:
  HvacServer(NodeId id, PfsStore& pfs, const HvacServerConfig& config);
  ~HvacServer();

  HvacServer(const HvacServer&) = delete;
  HvacServer& operator=(const HvacServer&) = delete;

  /// RPC dispatch; register with Transport as the node's handler.
  rpc::RpcResponse handle(const rpc::RpcRequest& request);

  [[nodiscard]] NodeId id() const { return id_; }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t pfs_fetches = 0;
    std::uint64_t recache_enqueued = 0;
    std::uint64_t recache_completed = 0;
    std::uint64_t replicas_stored = 0;  ///< kPut backups accepted
  };
  [[nodiscard]] Stats stats() const;

  /// Blocks until the data-mover queue drains (test synchronization).
  void flush_data_mover();

  /// Cached-state inspection (telemetry / tests).
  [[nodiscard]] bool has_cached(const std::string& path) const;
  [[nodiscard]] std::size_t cached_file_count() const;
  [[nodiscard]] std::uint64_t cached_bytes() const;

 private:
  rpc::RpcResponse handle_read(const rpc::RpcRequest& request);
  void mover_loop();

  NodeId id_;
  PfsStore& pfs_;
  HvacServerConfig config_;

  mutable std::mutex mutex_;  ///< guards cache_ and stats_
  storage::CacheStore cache_;
  Stats stats_;

  // Data-mover state.
  std::mutex mover_mutex_;
  std::condition_variable mover_cv_;
  std::deque<std::pair<std::string, std::string>> mover_queue_;
  bool mover_stop_ = false;
  bool mover_busy_ = false;  ///< an item is being inserted right now
  std::thread mover_;
};

}  // namespace ftc::cluster
