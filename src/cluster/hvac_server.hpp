// hvac_server.hpp - The per-node HVAC cache daemon (Sec II-B).
//
// One instance runs on every compute node.  On a read RPC it checks the
// node-local NVMe cache; a hit is served directly, a miss is fetched from
// the PFS, served, and handed to the data-mover pool which inserts it
// into the cache in the background — exactly the original HVAC flow.  The
// elastic-recaching design needs no server-side changes: a post-failure
// new owner simply sees a miss for the lost file and the normal
// fetch/serve/recache path restores it (one PFS access per lost file).
//
// Data path (zero-copy): payloads are ftc::common::Buffer — a cache hit
// hands out a reference to the stored bytes (no memcpy, CRC memoized per
// payload), and a miss shares one buffer between the RPC response and the
// recache task.  The cache itself is lock-striped (ShardedCacheStore), so
// concurrent reads of different files never serialize; server counters
// are lock-free atomics.  There is no server-wide mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cluster/fault_detector.hpp"  // NodeId
#include "cluster/pfs_store.hpp"
#include "common/thread_pool.hpp"
#include "rpc/message.hpp"
#include "storage/sharded_cache_store.hpp"

namespace ftc::membership {
class MembershipAgent;
}  // namespace ftc::membership

namespace ftc::cluster {

struct HvacServerConfig {
  /// NVMe capacity available for caching.
  std::uint64_t cache_capacity_bytes = 1ULL << 30;
  /// Victim selection when the dataset share exceeds the NVMe capacity.
  storage::EvictionPolicy eviction_policy = storage::EvictionPolicy::kLru;
  /// Lock stripes for the cache store (keys hashed across shards).
  std::size_t cache_shards = storage::ShardedCacheStore::kDefaultShards;
  /// When false, misses are cached inline before the response returns
  /// (deterministic mode for tests); when true, the data-mover pool does
  /// it in the background as in the original system.
  bool async_data_mover = true;
  /// Worker threads for the background recache pool (async mode only).
  std::size_t data_mover_threads = 1;
};

class HvacServer {
 public:
  HvacServer(NodeId id, PfsStore& pfs, const HvacServerConfig& config);
  ~HvacServer();

  HvacServer(const HvacServer&) = delete;
  HvacServer& operator=(const HvacServer&) = delete;

  /// RPC dispatch; register with Transport as the node's handler.
  /// Thread-safe: may be called from many transport workers concurrently.
  rpc::RpcResponse handle(const rpc::RpcRequest& request);

  /// Attaches this node's membership agent (not owned; must outlive the
  /// server).  Once attached, handle() dispatches the SWIM verbs to it
  /// and every data response is epoch-stamped and carries piggybacked
  /// gossip — including the kStaleView fast-forward for lagging clients.
  /// Never attached in legacy mode, leaving behaviour bit-identical.
  void attach_membership(membership::MembershipAgent* agent) {
    membership_ = agent;
  }

  [[nodiscard]] NodeId id() const { return id_; }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t pfs_fetches = 0;
    std::uint64_t recache_enqueued = 0;
    std::uint64_t recache_completed = 0;
    std::uint64_t replicas_stored = 0;  ///< kPut backups accepted
    /// Bytes of payload memcpy'd on the serve path.  Stays 0 on the
    /// refcounted data path (hits share the cache entry's bytes; a miss
    /// shares one buffer between response and recache task); kept so
    /// bench_throughput can prove it and regressions show up as nonzero.
    std::uint64_t payload_bytes_copied = 0;
    std::uint64_t evictions = 0;        ///< cache evictions to date
    std::uint64_t used_bytes = 0;       ///< current cache occupancy
  };
  /// Value snapshot of the lock-free counters plus cache occupancy.  As
  /// with HvacClient, there is deliberately no reference accessor —
  /// counters cannot be mutated or observed torn from outside.
  [[nodiscard]] Stats stats_snapshot() const;

  /// Blocks until the data-mover pool drains (test synchronization).
  void flush_data_mover();

  /// Drops every cached entry (counters keep their history).  Models a
  /// node whose NVMe state was lost while it was out of service — the
  /// reinstatement experiments use it so a returning node must recache
  /// on first touch.
  void clear_cache();

  /// Cached-state inspection (telemetry / tests).
  [[nodiscard]] bool has_cached(const std::string& path) const;
  [[nodiscard]] std::size_t cached_file_count() const;
  [[nodiscard]] std::uint64_t cached_bytes() const;

 private:
  /// The membership-agnostic op switch handle() wraps.
  rpc::RpcResponse dispatch(const rpc::RpcRequest& request);
  rpc::RpcResponse handle_read(const rpc::RpcRequest& request);
  void recache(const std::string& path, const common::Buffer& contents);

  /// Lock-free counters (snapshotted by stats()).
  struct AtomicStats {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> pfs_fetches{0};
    std::atomic<std::uint64_t> recache_enqueued{0};
    std::atomic<std::uint64_t> recache_completed{0};
    std::atomic<std::uint64_t> replicas_stored{0};
    std::atomic<std::uint64_t> payload_bytes_copied{0};
  };

  NodeId id_;
  PfsStore& pfs_;
  HvacServerConfig config_;
  membership::MembershipAgent* membership_ = nullptr;
  storage::ShardedCacheStore cache_;  ///< internally lock-striped
  AtomicStats stats_;
  /// Declared last: destroyed first, so queued recache tasks (which touch
  /// cache_ and stats_) finish while those members are still alive.
  std::unique_ptr<common::ThreadPool> mover_pool_;
};

}  // namespace ftc::cluster
