// cluster.hpp - Wires servers, clients, transport and PFS into a test
// cluster.
//
// The threaded equivalent of one Frontier allocation running FT-Cache:
// every node hosts an HVAC server endpoint and an HVAC client (clients and
// servers are co-located in the real deployment).  Integration tests and
// the quickstart example drive this directly; scale experiments use the
// DES substrate instead.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hvac_client.hpp"
#include "cluster/hvac_server.hpp"
#include "cluster/pfs_store.hpp"
#include "membership/scheduler.hpp"
#include "membership/swim.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs_config.hpp"
#include "rpc/transport.hpp"

namespace ftc::cluster {

struct ClusterConfig {
  std::uint32_t node_count = 4;
  HvacClientConfig client;
  HvacServerConfig server;
  /// Simulated PFS read latency (models the NVMe-vs-Lustre gap).
  std::chrono::microseconds pfs_read_latency{0};
  /// Concurrent latency-modelled PFS reads serviced at full speed; excess
  /// queues and stretches (a job's Lustre OST share is finite).  0 =
  /// unlimited, the legacy behaviour.
  std::uint32_t pfs_service_slots = 0;
  /// SWIM membership service (default OFF: the seed's client-local
  /// detection, bit-for-bit).  When enabled, every node gets a
  /// MembershipAgent wired into its server and (hash-ring mode) client,
  /// and a GossipScheduler drives the protocol periods.
  membership::SwimConfig membership;
  /// Observability (default OFF: no recorders, no sampling, the request
  /// path is bit-for-bit the untraced one).  The metrics registry always
  /// exists — collectors read the components' own counters at export
  /// time, so it costs nothing per request either way.
  obs::ObsConfig obs;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::uint32_t node_count() const {
    return config_.node_count;
  }
  [[nodiscard]] HvacClient& client(NodeId node) { return *clients_[node]; }
  [[nodiscard]] HvacServer& server(NodeId node) { return *servers_[node]; }
  [[nodiscard]] PfsStore& pfs() { return pfs_; }
  [[nodiscard]] rpc::Transport& transport() { return transport_; }

  /// Stages `count` synthetic files of `bytes` each on the PFS; returns
  /// their paths (the dataset the job will train on).
  std::vector<std::string> stage_dataset(std::uint32_t count,
                                         std::uint32_t bytes);

  /// Reads every file once through round-robin clients so all caches are
  /// populated (the paper's epoch-1 warm-up) and waits for data movers.
  void warm_caches(const std::vector<std::string>& paths);

  /// Crash-stop failure injection: the node's endpoint discards requests
  /// from now on (SLURM drain equivalent).
  void fail_node(NodeId node);

  /// Undoes fail_node: the endpoint serves again (a drained node handed
  /// back to the job).  When `lose_cache` is true the node's NVMe state
  /// is wiped first, so after reinstatement its keys recache from the PFS
  /// on first touch — the gray-failure recovery experiment.
  void restore_node(NodeId node, bool lose_cache = false);

  /// Kill-and-warm-restart (server.store.tiering only): destroys the
  /// node's server process — RAM tier, counters, freshness ledger all
  /// lost — and boots a fresh incarnation against the node's surviving
  /// NVMe device.  The new server rebuilds its cold tier from the
  /// device's manifest, validating each entry's generation against the
  /// ledgers of the other alive nodes (the in-process stand-in for a
  /// metadata query on rejoin).  Returns the number of entries restored.
  /// Without tiering this degrades to restore_node(node, /*lose=*/true).
  std::size_t restart_node_warm(NodeId node);

  /// Elastic scale-up: provisions a new node (server + client) and
  /// announces it to every existing client.  Returns the new node's id.
  /// In ring mode only ~1/(N+1) of keys migrate to it, each recached from
  /// the PFS on first touch.
  NodeId add_node();

  [[nodiscard]] bool node_is_failed(NodeId node) const {
    return transport_.is_killed(node);
  }

  /// Sum of cached files across all (alive) servers.
  [[nodiscard]] std::size_t total_cached_files() const;

  // --- membership service (only when config.membership.enabled) --------
  [[nodiscard]] bool membership_enabled() const { return !agents_.empty(); }
  /// The node's membership agent; only valid when membership_enabled().
  [[nodiscard]] membership::MembershipAgent& membership(NodeId node) {
    return *agents_[node];
  }
  /// One synchronous protocol round over every agent (manual-clock mode;
  /// with `membership.background` the scheduler thread does this).
  void tick_membership();

  // --- observability ---------------------------------------------------
  /// Unified metrics over every component's counters (always available;
  /// export_prometheus_text() / export_json() snapshot them on demand).
  [[nodiscard]] obs::MetricsRegistry& metrics_registry() { return metrics_; }
  /// The node's flight recorder; nullptr unless config.obs.tracing.
  [[nodiscard]] obs::FlightRecorder* flight_recorder(NodeId node) {
    return node < recorders_.size() ? recorders_[node].get() : nullptr;
  }
  /// Every node's trace records merged into one timeline (sorted by
  /// start time).  Empty unless config.obs.tracing.
  [[nodiscard]] std::vector<obs::Record> dump_traces() const;

 private:
  /// Constructs node `n`'s server, handing it the node's NVMe device
  /// (created on first use) when the tiered store is enabled, and
  /// registers its endpoint with admission/load-report knobs applied.
  void boot_server(NodeId node);
  /// Attaches node `n`'s recorder to its server, client, transport
  /// endpoint, PFS guard and (if present) membership agent.
  void wire_node_observability(NodeId node);
  /// The registry collector: walks every node's stats snapshot.
  void collect_metrics(obs::MetricsRegistry::Collection& out) const;

  ClusterConfig config_;
  PfsStore pfs_;
  obs::MetricsRegistry metrics_;
  /// Declared before transport_ (so destroyed after it): transport
  /// teardown drains async completions that still record spans.
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders_;
  rpc::Transport transport_;
  /// Per-node NVMe volumes (tiered store only; empty slots otherwise).
  /// Owned here, NOT by the servers, because the device outlives a server
  /// crash — that lifetime split is what makes warm restarts possible.
  std::vector<std::shared_ptr<ftc::store::NvmeDevice>> devices_;
  std::vector<std::unique_ptr<HvacServer>> servers_;
  std::vector<std::unique_ptr<HvacClient>> clients_;
  std::vector<std::unique_ptr<membership::MembershipAgent>> agents_;
  std::unique_ptr<membership::GossipScheduler> scheduler_;
};

}  // namespace ftc::cluster
