#include "cluster/failure_injector.hpp"

#include <algorithm>

namespace ftc::cluster {

std::vector<PlannedFailure> plan_failures(const FailurePlanParams& params) {
  std::vector<PlannedFailure> plan;
  if (params.node_count == 0 || params.failure_count == 0) return plan;
  if (params.first_eligible_epoch >= params.total_epochs) return plan;

  Rng rng(params.seed);
  // Victims without replacement; cannot kill more nodes than exist minus
  // one survivor (someone must keep training).
  const std::uint32_t max_failures =
      std::min(params.failure_count, params.node_count - 1);
  std::vector<std::uint32_t> candidates(params.node_count);
  for (std::uint32_t i = 0; i < params.node_count; ++i) candidates[i] = i;
  rng.shuffle(candidates);

  const std::uint32_t eligible_epochs =
      params.total_epochs - params.first_eligible_epoch;
  plan.reserve(max_failures);
  for (std::uint32_t i = 0; i < max_failures; ++i) {
    PlannedFailure failure;
    failure.victim = candidates[i];
    failure.epoch = params.first_eligible_epoch +
                    static_cast<std::uint32_t>(rng.below(eligible_epochs));
    failure.epoch_fraction = rng.uniform();
    plan.push_back(failure);
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedFailure& a, const PlannedFailure& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.epoch_fraction < b.epoch_fraction;
            });
  return plan;
}

void execute_plan(const std::vector<PlannedFailure>& plan,
                  const std::function<void(std::uint32_t)>& kill_node) {
  for (const PlannedFailure& failure : plan) kill_node(failure.victim);
}

}  // namespace ftc::cluster
