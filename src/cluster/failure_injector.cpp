#include "cluster/failure_injector.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace ftc::cluster {

std::vector<PlannedFailure> plan_failures(const FailurePlanParams& params) {
  std::vector<PlannedFailure> plan;
  if (params.node_count == 0 || params.failure_count == 0) return plan;
  if (params.first_eligible_epoch >= params.total_epochs) return plan;

  Rng rng(params.seed);
  // Victims without replacement; cannot kill more nodes than exist minus
  // one survivor (someone must keep training).
  const std::uint32_t max_failures =
      std::min(params.failure_count, params.node_count - 1);
  std::vector<std::uint32_t> candidates(params.node_count);
  for (std::uint32_t i = 0; i < params.node_count; ++i) candidates[i] = i;
  rng.shuffle(candidates);

  const std::uint32_t eligible_epochs =
      params.total_epochs - params.first_eligible_epoch;
  plan.reserve(max_failures);
  for (std::uint32_t i = 0; i < max_failures; ++i) {
    PlannedFailure failure;
    failure.victim = candidates[i];
    failure.epoch = params.first_eligible_epoch +
                    static_cast<std::uint32_t>(rng.below(eligible_epochs));
    failure.epoch_fraction = rng.uniform();
    plan.push_back(failure);
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedFailure& a, const PlannedFailure& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.epoch_fraction < b.epoch_fraction;
            });
  return plan;
}

void execute_plan(const std::vector<PlannedFailure>& plan,
                  const std::function<void(std::uint32_t)>& kill_node) {
  for (const PlannedFailure& failure : plan) kill_node(failure.victim);
}

GrayFailureInjector::GrayFailureInjector(rpc::Transport& transport,
                                         std::uint64_t seed)
    : transport_(transport), rng_(seed), seed_(seed) {}

void GrayFailureInjector::make_slow(NodeId node,
                                    std::chrono::milliseconds added) {
  transport_.set_extra_latency(node, added);
}

void GrayFailureInjector::clear_slow(NodeId node) {
  transport_.set_extra_latency(node, std::chrono::milliseconds{0});
}

void GrayFailureInjector::make_lossy(NodeId node, double drop_probability) {
  // Per-node stream derived from the injector seed: two injectors with
  // the same seed drop the same requests regardless of call order.
  std::uint64_t mix = seed_ ^ (static_cast<std::uint64_t>(node) * 0x9E3779B97F4A7C15ULL);
  transport_.set_drop_probability(node, drop_probability, splitmix64(mix));
}

void GrayFailureInjector::clear_lossy(NodeId node) {
  transport_.set_drop_probability(node, 0.0);
}

void GrayFailureInjector::kill(NodeId node) { transport_.kill(node); }

void GrayFailureInjector::revive(NodeId node) { transport_.revive(node); }

void GrayFailureInjector::make_duplicating(NodeId node, double probability) {
  // Same per-node stream derivation as make_lossy: order-independent
  // determinism across injectors sharing a seed.
  std::uint64_t mix =
      seed_ ^ (static_cast<std::uint64_t>(node) * 0x9E3779B97F4A7C15ULL);
  transport_.set_duplicate_probability(node, probability, splitmix64(mix));
}

void GrayFailureInjector::clear_duplicating(NodeId node) {
  transport_.set_duplicate_probability(node, 0.0);
}

void GrayFailureInjector::make_reordering(NodeId node, double probability,
                                          std::uint32_t max_displacement) {
  std::uint64_t mix =
      seed_ ^ (static_cast<std::uint64_t>(node) * 0xBF58476D1CE4E5B9ULL);
  transport_.set_reorder(node, probability, max_displacement, splitmix64(mix));
}

void GrayFailureInjector::clear_reordering(NodeId node) {
  transport_.set_reorder(node, 0.0, 1);
}

void GrayFailureInjector::partition(std::vector<NodeId> side_a,
                                    std::vector<NodeId> side_b, bool one_way) {
  manual_partition_ = true;
  manual_spec_ =
      PartitionSpec{std::move(side_a), std::move(side_b), one_way};
  apply_partitions();
}

void GrayFailureInjector::heal_partition() {
  if (!manual_partition_) return;
  manual_partition_ = false;
  manual_spec_ = PartitionSpec{};
  apply_partitions();
}

void GrayFailureInjector::schedule_partition(std::vector<NodeId> side_a,
                                             std::vector<NodeId> side_b,
                                             std::uint64_t start_tick,
                                             std::uint64_t duration_ticks,
                                             bool one_way) {
  ScheduledPartition scheduled;
  scheduled.spec =
      PartitionSpec{std::move(side_a), std::move(side_b), one_way};
  scheduled.start_tick = start_tick;
  scheduled.end_tick = start_tick + (duration_ticks == 0 ? 1 : duration_ticks);
  scheduled.active = false;
  scheduled_partitions_.push_back(std::move(scheduled));
  // An already-due schedule (start_tick <= ticks_) activates on the next
  // tick — schedules are tick-driven by contract.
}

bool GrayFailureInjector::partition_active() const {
  if (manual_partition_) return true;
  return std::any_of(scheduled_partitions_.begin(),
                     scheduled_partitions_.end(),
                     [](const ScheduledPartition& s) { return s.active; });
}

void GrayFailureInjector::apply_partitions() {
  // Union of blocked senders per endpoint across every active split.
  std::unordered_map<NodeId, std::unordered_set<NodeId>> blocks;
  const auto fold = [&blocks](const PartitionSpec& spec) {
    // side_a -> side_b traffic is always cut: requests FROM side_a die at
    // side_b endpoints.  A symmetric split cuts the reverse too.
    for (const NodeId b : spec.side_b) {
      blocks[b].insert(spec.side_a.begin(), spec.side_a.end());
    }
    if (!spec.one_way) {
      for (const NodeId a : spec.side_a) {
        blocks[a].insert(spec.side_b.begin(), spec.side_b.end());
      }
    }
  };
  if (manual_partition_) fold(manual_spec_);
  for (const ScheduledPartition& scheduled : scheduled_partitions_) {
    if (scheduled.active) fold(scheduled.spec);
  }
  // Clear endpoints that were blocked before but are not any more.
  for (const NodeId node : blocked_endpoints_) {
    if (!blocks.contains(node)) transport_.set_blocked_senders(node, {});
  }
  blocked_endpoints_.clear();
  std::uint64_t link_count = 0;
  for (auto& [node, senders] : blocks) {
    link_count += senders.size();
    transport_.set_blocked_senders(
        node, std::vector<NodeId>(senders.begin(), senders.end()));
    blocked_endpoints_.push_back(node);
  }
  if (recorder_ != nullptr) {
    recorder_->record_event(
        link_count > 0 ? obs::RecordKind::kPartitionStart
                       : obs::RecordKind::kPartitionHeal,
        obs::TraceContext{}, ftc::kInvalidNode,
        manual_partition_ && manual_spec_.one_way ? 1 : 0, link_count,
        link_count > 0 ? "partition" : "heal");
  }
}

void GrayFailureInjector::add_flap(NodeId node, std::uint32_t down_ticks,
                                   std::uint32_t up_ticks) {
  FlapSchedule schedule;
  schedule.down_ticks = down_ticks == 0 ? 1 : down_ticks;
  schedule.up_ticks = up_ticks == 0 ? 1 : up_ticks;
  // Seed-jittered starting point within the up phase so multiple flapping
  // nodes are not phase-locked.
  schedule.phase = static_cast<std::uint32_t>(rng_.below(schedule.up_ticks));
  schedule.down = false;
  flaps_[node] = schedule;
}

void GrayFailureInjector::remove_flap(NodeId node) {
  const auto it = flaps_.find(node);
  if (it == flaps_.end()) return;
  if (it->second.down) {
    transport_.revive(node);
    ++flap_transitions_;
  }
  flaps_.erase(it);
}

void GrayFailureInjector::tick() {
  ++ticks_;
  bool partitions_changed = false;
  for (ScheduledPartition& scheduled : scheduled_partitions_) {
    const bool should_be_active =
        ticks_ >= scheduled.start_tick && ticks_ < scheduled.end_tick;
    if (should_be_active != scheduled.active) {
      scheduled.active = should_be_active;
      partitions_changed = true;
    }
  }
  if (partitions_changed) apply_partitions();
  for (auto& [node, schedule] : flaps_) {
    ++schedule.phase;
    const std::uint32_t limit =
        schedule.down ? schedule.down_ticks : schedule.up_ticks;
    if (schedule.phase < limit) continue;
    schedule.phase = 0;
    schedule.down = !schedule.down;
    if (schedule.down) {
      transport_.kill(node);
    } else {
      transport_.revive(node);
    }
    ++flap_transitions_;
  }
}

bool GrayFailureInjector::is_down(NodeId node) const {
  return transport_.is_killed(node);
}

}  // namespace ftc::cluster
