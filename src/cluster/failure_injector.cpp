#include "cluster/failure_injector.hpp"

#include <algorithm>

namespace ftc::cluster {

std::vector<PlannedFailure> plan_failures(const FailurePlanParams& params) {
  std::vector<PlannedFailure> plan;
  if (params.node_count == 0 || params.failure_count == 0) return plan;
  if (params.first_eligible_epoch >= params.total_epochs) return plan;

  Rng rng(params.seed);
  // Victims without replacement; cannot kill more nodes than exist minus
  // one survivor (someone must keep training).
  const std::uint32_t max_failures =
      std::min(params.failure_count, params.node_count - 1);
  std::vector<std::uint32_t> candidates(params.node_count);
  for (std::uint32_t i = 0; i < params.node_count; ++i) candidates[i] = i;
  rng.shuffle(candidates);

  const std::uint32_t eligible_epochs =
      params.total_epochs - params.first_eligible_epoch;
  plan.reserve(max_failures);
  for (std::uint32_t i = 0; i < max_failures; ++i) {
    PlannedFailure failure;
    failure.victim = candidates[i];
    failure.epoch = params.first_eligible_epoch +
                    static_cast<std::uint32_t>(rng.below(eligible_epochs));
    failure.epoch_fraction = rng.uniform();
    plan.push_back(failure);
  }
  std::sort(plan.begin(), plan.end(),
            [](const PlannedFailure& a, const PlannedFailure& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              return a.epoch_fraction < b.epoch_fraction;
            });
  return plan;
}

void execute_plan(const std::vector<PlannedFailure>& plan,
                  const std::function<void(std::uint32_t)>& kill_node) {
  for (const PlannedFailure& failure : plan) kill_node(failure.victim);
}

GrayFailureInjector::GrayFailureInjector(rpc::Transport& transport,
                                         std::uint64_t seed)
    : transport_(transport), rng_(seed), seed_(seed) {}

void GrayFailureInjector::make_slow(NodeId node,
                                    std::chrono::milliseconds added) {
  transport_.set_extra_latency(node, added);
}

void GrayFailureInjector::clear_slow(NodeId node) {
  transport_.set_extra_latency(node, std::chrono::milliseconds{0});
}

void GrayFailureInjector::make_lossy(NodeId node, double drop_probability) {
  // Per-node stream derived from the injector seed: two injectors with
  // the same seed drop the same requests regardless of call order.
  std::uint64_t mix = seed_ ^ (static_cast<std::uint64_t>(node) * 0x9E3779B97F4A7C15ULL);
  transport_.set_drop_probability(node, drop_probability, splitmix64(mix));
}

void GrayFailureInjector::clear_lossy(NodeId node) {
  transport_.set_drop_probability(node, 0.0);
}

void GrayFailureInjector::kill(NodeId node) { transport_.kill(node); }

void GrayFailureInjector::revive(NodeId node) { transport_.revive(node); }

void GrayFailureInjector::add_flap(NodeId node, std::uint32_t down_ticks,
                                   std::uint32_t up_ticks) {
  FlapSchedule schedule;
  schedule.down_ticks = down_ticks == 0 ? 1 : down_ticks;
  schedule.up_ticks = up_ticks == 0 ? 1 : up_ticks;
  // Seed-jittered starting point within the up phase so multiple flapping
  // nodes are not phase-locked.
  schedule.phase = static_cast<std::uint32_t>(rng_.below(schedule.up_ticks));
  schedule.down = false;
  flaps_[node] = schedule;
}

void GrayFailureInjector::remove_flap(NodeId node) {
  const auto it = flaps_.find(node);
  if (it == flaps_.end()) return;
  if (it->second.down) {
    transport_.revive(node);
    ++flap_transitions_;
  }
  flaps_.erase(it);
}

void GrayFailureInjector::tick() {
  ++ticks_;
  for (auto& [node, schedule] : flaps_) {
    ++schedule.phase;
    const std::uint32_t limit =
        schedule.down ? schedule.down_ticks : schedule.up_ticks;
    if (schedule.phase < limit) continue;
    schedule.phase = 0;
    schedule.down = !schedule.down;
    if (schedule.down) {
      transport_.kill(node);
    } else {
      transport_.revive(node);
    }
    ++flap_transitions_;
  }
}

bool GrayFailureInjector::is_down(NodeId node) const {
  return transport_.is_killed(node);
}

}  // namespace ftc::cluster
