#include "cluster/cluster.hpp"

#include <stdexcept>

#include "common/string_util.hpp"

namespace ftc::cluster {

namespace {

ring::RingConfig membership_ring_config(const HvacClientConfig& client) {
  // The agents' epoch-0 views must be fingerprint-identical to the
  // clients' private rings, so they share the same ring parameters.
  ring::RingConfig ring_config;
  ring_config.vnodes_per_node = client.vnodes_per_node;
  ring_config.seed = client.ring_seed;
  return ring_config;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), pfs_(config.pfs_read_latency) {
  pfs_.set_service_concurrency(config_.pfs_service_slots);
  if (config_.membership.enabled) {
    const Status valid = config_.membership.validate();
    if (!valid.is_ok()) {
      throw std::invalid_argument("SwimConfig: " + valid.to_string());
    }
  }

  std::vector<NodeId> members;
  members.reserve(config_.node_count);
  for (NodeId n = 0; n < config_.node_count; ++n) members.push_back(n);

  servers_.reserve(config_.node_count);
  clients_.reserve(config_.node_count);
  for (NodeId n = 0; n < config_.node_count; ++n) {
    servers_.push_back(std::make_unique<HvacServer>(n, pfs_, config_.server));
    HvacServer* server = servers_.back().get();
    transport_.register_endpoint(
        n,
        [server](const rpc::RpcRequest& request) {
          return server->handle(request);
        },
        config_.server.endpoint_workers);
    if (config_.server.admission_control) {
      transport_.set_admission(
          n, {config_.server.admission_queue_limit,
              config_.server.admission_retry_after_ms});
    }
    clients_.push_back(std::make_unique<HvacClient>(
        n, transport_, pfs_, members, config_.client));
  }

  if (config_.membership.enabled) {
    scheduler_ = std::make_unique<membership::GossipScheduler>(
        config_.membership.probe_period);
    agents_.reserve(config_.node_count);
    for (NodeId n = 0; n < config_.node_count; ++n) {
      agents_.push_back(std::make_unique<membership::MembershipAgent>(
          n, transport_, config_.membership,
          membership_ring_config(config_.client), members));
      servers_[n]->attach_membership(agents_.back().get());
      // The static placement modes keep their paper semantics; only the
      // hash-ring client routes through the epoch'd view.
      if (config_.client.mode == FtMode::kHashRingRecache) {
        clients_[n]->attach_membership(agents_.back().get());
      }
      scheduler_->add(agents_.back().get());
    }
    if (config_.membership.background) scheduler_->start();
  }
}

Cluster::~Cluster() {
  // Teardown order matters: stop the gossip scheduler first so no new
  // probes launch, then stop and join every endpoint worker before the
  // servers/agents their handlers point at are destroyed, then drain the
  // async completion pool (hedge legs, SWIM probes) so no callback
  // outlives the cluster.
  if (scheduler_) scheduler_->stop();
  for (NodeId n = 0; n < servers_.size(); ++n) {
    (void)transport_.unregister_endpoint(n);
  }
  transport_.drain_async();
}

void Cluster::tick_membership() {
  if (scheduler_) scheduler_->tick_all();
}

std::vector<std::string> Cluster::stage_dataset(std::uint32_t count,
                                                std::uint32_t bytes) {
  const std::string prefix = "/lustre/orion/cosmoUniverse";
  pfs_.populate_synthetic(prefix, count, bytes);
  std::vector<std::string> paths;
  paths.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    paths.push_back(prefix + "/file_" + zero_pad(i, 7) + ".tfrecord");
  }
  return paths;
}

void Cluster::warm_caches(const std::vector<std::string>& paths) {
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const NodeId reader = static_cast<NodeId>(i % config_.node_count);
    (void)clients_[reader]->read_file(paths[i]);
  }
  for (auto& server : servers_) server->flush_data_mover();
}

void Cluster::fail_node(NodeId node) { transport_.kill(node); }

void Cluster::restore_node(NodeId node, bool lose_cache) {
  if (lose_cache && node < servers_.size()) servers_[node]->clear_cache();
  transport_.revive(node);
}

NodeId Cluster::add_node() {
  const auto node = static_cast<NodeId>(servers_.size());
  servers_.push_back(std::make_unique<HvacServer>(node, pfs_, config_.server));
  HvacServer* server = servers_.back().get();
  transport_.register_endpoint(
      node,
      [server](const rpc::RpcRequest& request) {
        return server->handle(request);
      },
      config_.server.endpoint_workers);
  if (config_.server.admission_control) {
    transport_.set_admission(node,
                             {config_.server.admission_queue_limit,
                              config_.server.admission_retry_after_ms});
  }
  std::vector<NodeId> members;
  members.reserve(servers_.size());
  for (NodeId n = 0; n <= node; ++n) members.push_back(n);
  clients_.push_back(std::make_unique<HvacClient>(node, transport_, pfs_,
                                                  members, config_.client));
  if (config_.membership.enabled) {
    agents_.push_back(std::make_unique<membership::MembershipAgent>(
        node, transport_, config_.membership,
        membership_ring_config(config_.client), members));
    membership::MembershipAgent* agent = agents_.back().get();
    server->attach_membership(agent);
    if (config_.client.mode == FtMode::kHashRingRecache) {
      clients_.back()->attach_membership(agent);
    }
    // The new agent's seeded view may be stale (it assumes every earlier
    // node is serving).  Pull the authoritative state from the first
    // responsive sitting member before taking traffic.
    for (NodeId peer = 0; peer < node; ++peer) {
      if (transport_.is_killed(peer)) continue;
      rpc::RpcRequest sync;
      sync.op = rpc::Op::kMembershipSync;
      sync.client_node = node;
      agent->stamp_request(sync);
      auto result = transport_.call(peer, std::move(sync),
                                    config_.client.rpc_timeout);
      if (result.is_ok() && result.value().code == StatusCode::kOk) {
        (void)agent->ingest(result.value());
        break;
      }
    }
    scheduler_->add(agent);
  }
  for (NodeId n = 0; n < node; ++n) clients_[n]->add_server(node);
  config_.node_count = static_cast<std::uint32_t>(servers_.size());
  return node;
}

std::size_t Cluster::total_cached_files() const {
  std::size_t total = 0;
  for (const auto& server : servers_) total += server->cached_file_count();
  return total;
}

}  // namespace ftc::cluster
