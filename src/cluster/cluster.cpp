#include "cluster/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/string_util.hpp"

namespace ftc::cluster {

namespace {

ring::RingConfig membership_ring_config(const HvacClientConfig& client) {
  // The agents' epoch-0 views must be fingerprint-identical to the
  // clients' private rings, so they share the same ring parameters.
  ring::RingConfig ring_config;
  ring_config.vnodes_per_node = client.vnodes_per_node;
  ring_config.seed = client.ring_seed;
  return ring_config;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), pfs_(config.pfs_read_latency) {
  pfs_.set_service_concurrency(config_.pfs_service_slots);
  if (config_.membership.enabled) {
    const Status valid = config_.membership.validate();
    if (!valid.is_ok()) {
      throw std::invalid_argument("SwimConfig: " + valid.to_string());
    }
  }
  {
    const Status valid = config_.obs.validate();
    if (!valid.is_ok()) {
      throw std::invalid_argument("ObsConfig: " + valid.to_string());
    }
  }

  std::vector<NodeId> members;
  members.reserve(config_.node_count);
  for (NodeId n = 0; n < config_.node_count; ++n) members.push_back(n);

  servers_.reserve(config_.node_count);
  clients_.reserve(config_.node_count);
  for (NodeId n = 0; n < config_.node_count; ++n) {
    boot_server(n);
    clients_.push_back(std::make_unique<HvacClient>(
        n, transport_, pfs_, members, config_.client));
  }

  if (config_.membership.enabled) {
    scheduler_ = std::make_unique<membership::GossipScheduler>(
        config_.membership.probe_period);
    agents_.reserve(config_.node_count);
    for (NodeId n = 0; n < config_.node_count; ++n) {
      agents_.push_back(std::make_unique<membership::MembershipAgent>(
          n, transport_, config_.membership,
          membership_ring_config(config_.client), members));
      servers_[n]->attach_membership(agents_.back().get());
      // The static placement modes keep their paper semantics; only the
      // hash-ring client routes through the epoch'd view.
      if (config_.client.mode == FtMode::kHashRingRecache) {
        clients_[n]->attach_membership(agents_.back().get());
      }
      scheduler_->add(agents_.back().get());
    }
    if (config_.membership.background) scheduler_->start();
  }

  for (NodeId n = 0; n < config_.node_count; ++n) wire_node_observability(n);
  metrics_.register_collector(
      [this](obs::MetricsRegistry::Collection& out) { collect_metrics(out); });
}

Cluster::~Cluster() {
  // Teardown order matters: stop the gossip scheduler first so no new
  // probes launch, then stop and join every endpoint worker before the
  // servers/agents their handlers point at are destroyed, then drain the
  // async completion pool (hedge legs, SWIM probes) so no callback
  // outlives the cluster.
  if (scheduler_) scheduler_->stop();
  for (NodeId n = 0; n < servers_.size(); ++n) {
    (void)transport_.unregister_endpoint(n);
  }
  transport_.drain_async();
}

void Cluster::tick_membership() {
  if (scheduler_) scheduler_->tick_all();
}

std::vector<std::string> Cluster::stage_dataset(std::uint32_t count,
                                                std::uint32_t bytes) {
  const std::string prefix = "/lustre/orion/cosmoUniverse";
  pfs_.populate_synthetic(prefix, count, bytes);
  std::vector<std::string> paths;
  paths.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    paths.push_back(prefix + "/file_" + zero_pad(i, 7) + ".tfrecord");
  }
  return paths;
}

void Cluster::warm_caches(const std::vector<std::string>& paths) {
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const NodeId reader = static_cast<NodeId>(i % config_.node_count);
    (void)clients_[reader]->read_file(paths[i]);
  }
  for (auto& server : servers_) server->flush_data_mover();
}

void Cluster::boot_server(NodeId node) {
  if (config_.server.store.tiering) {
    if (devices_.size() <= node) devices_.resize(node + 1);
    // The device is created ONCE per node and reused across server
    // incarnations — it is the state that survives a crash.
    if (!devices_[node]) {
      devices_[node] = std::make_shared<ftc::store::NvmeDevice>(
          config_.server.store.nvme_bytes,
          config_.server.store.model_nvme_latency, config_.server.store.nvme);
    }
  }
  auto server = std::make_unique<HvacServer>(
      node, pfs_, config_.server,
      config_.server.store.tiering ? devices_[node] : nullptr);
  if (servers_.size() <= node) servers_.resize(node + 1);
  servers_[node] = std::move(server);
  HvacServer* raw = servers_[node].get();
  transport_.register_endpoint(
      node,
      [raw](const rpc::RpcRequest& request) { return raw->handle(request); },
      config_.server.endpoint_workers);
  if (config_.server.admission_control) {
    transport_.set_admission(node, {config_.server.admission_queue_limit,
                                    config_.server.admission_retry_after_ms});
  }
  if (config_.server.report_load) {
    transport_.set_load_reporting(node,
                                  {true, config_.server.load_report_alpha});
  }
}

void Cluster::fail_node(NodeId node) { transport_.kill(node); }

void Cluster::restore_node(NodeId node, bool lose_cache) {
  if (lose_cache && node < servers_.size()) servers_[node]->clear_cache();
  transport_.revive(node);
}

std::size_t Cluster::restart_node_warm(NodeId node) {
  if (!config_.server.store.tiering) {
    // No tiered store = no surviving device; this IS the lost-cache path.
    restore_node(node, /*lose_cache=*/true);
    return 0;
  }
  // Crash the incumbent: stop its endpoint workers, then destroy the
  // server object.  RAM tier, counters and freshness ledger die with it;
  // devices_[node] — the NVMe volume and its manifest — survives.
  (void)transport_.unregister_endpoint(node);
  servers_[node].reset();
  boot_server(node);
  transport_.revive(node);  // clears any fail_node() preceding the restart
  if (node < agents_.size()) {
    servers_[node]->attach_membership(agents_[node].get());
  }
  if (config_.obs.tracing && node < recorders_.size()) {
    servers_[node]->attach_observability(recorders_[node].get());
  }
  // Generation authority for manifest validation: the max generation any
  // other alive node's freshness ledger has accepted for the path — the
  // in-process stand-in for the rejoin metadata query a real deployment
  // would make.  Entries below the floor were superseded while this node
  // was down and are dropped instead of served.
  const auto authority = [this, node](const std::string& path) {
    std::uint64_t floor = 0;
    for (NodeId peer = 0; peer < servers_.size(); ++peer) {
      if (peer == node || !servers_[peer] || transport_.is_killed(peer)) {
        continue;
      }
      floor = std::max(floor, servers_[peer]->replica_generation_of(path));
    }
    return floor;
  };
  return servers_[node]->warm_restore(authority);
}

NodeId Cluster::add_node() {
  const auto node = static_cast<NodeId>(servers_.size());
  boot_server(node);
  HvacServer* server = servers_.back().get();
  std::vector<NodeId> members;
  members.reserve(servers_.size());
  for (NodeId n = 0; n <= node; ++n) members.push_back(n);
  clients_.push_back(std::make_unique<HvacClient>(node, transport_, pfs_,
                                                  members, config_.client));
  if (config_.membership.enabled) {
    agents_.push_back(std::make_unique<membership::MembershipAgent>(
        node, transport_, config_.membership,
        membership_ring_config(config_.client), members));
    membership::MembershipAgent* agent = agents_.back().get();
    server->attach_membership(agent);
    if (config_.client.mode == FtMode::kHashRingRecache) {
      clients_.back()->attach_membership(agent);
    }
    // The new agent's seeded view may be stale (it assumes every earlier
    // node is serving).  Pull the authoritative state from the first
    // responsive sitting member before taking traffic.
    for (NodeId peer = 0; peer < node; ++peer) {
      if (transport_.is_killed(peer)) continue;
      rpc::RpcRequest sync;
      sync.op = rpc::Op::kMembershipSync;
      sync.client_node = node;
      agent->stamp_request(sync);
      auto result = transport_.call(peer, std::move(sync),
                                    config_.client.rpc_timeout);
      if (result.is_ok() && result.value().code == StatusCode::kOk) {
        (void)agent->ingest(result.value());
        break;
      }
    }
    scheduler_->add(agent);
  }
  for (NodeId n = 0; n < node; ++n) clients_[n]->add_server(node);
  config_.node_count = static_cast<std::uint32_t>(servers_.size());
  wire_node_observability(node);
  return node;
}

void Cluster::wire_node_observability(NodeId node) {
  if (!config_.obs.tracing) return;
  recorders_.push_back(
      std::make_unique<obs::FlightRecorder>(config_.obs.recorder_capacity));
  obs::FlightRecorder* recorder = recorders_.back().get();
  servers_[node]->attach_observability(recorder);
  clients_[node]->attach_observability(recorder, config_.obs.sample_every);
  transport_.set_flight_recorder(node, recorder);
  if (node < agents_.size()) agents_[node]->set_flight_recorder(recorder);
}

std::vector<obs::Record> Cluster::dump_traces() const {
  std::vector<obs::Record> all;
  for (const auto& recorder : recorders_) {
    std::vector<obs::Record> records = recorder->dump();
    all.insert(all.end(), records.begin(), records.end());
  }
  std::sort(all.begin(), all.end(),
            [](const obs::Record& a, const obs::Record& b) {
              return a.start_ns < b.start_ns;
            });
  return all;
}

void Cluster::collect_metrics(obs::MetricsRegistry::Collection& out) const {
  // Latency histogram bounds in microseconds; chosen to straddle the
  // NVMe-hit / PFS-fetch / storm-retry regimes.
  static const std::vector<double> kLatencyBoundsUs = {
      50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000};
  for (NodeId n = 0; n < static_cast<NodeId>(clients_.size()); ++n) {
    const obs::Labels node_label = {{"node", std::to_string(n)}};
    const auto with_outcome = [&](const char* outcome) {
      obs::Labels labels = node_label;
      labels.emplace_back("outcome", outcome);
      return labels;
    };

    const HvacClient::Stats c = clients_[n]->stats_snapshot();
    out.counter("ftc_client_reads_total", node_label, c.reads);
    out.counter("ftc_client_served_total", with_outcome("remote_cache"),
                c.served_remote_cache);
    out.counter("ftc_client_served_total", with_outcome("remote_fetch"),
                c.served_remote_fetch);
    out.counter("ftc_client_served_total", with_outcome("pfs_direct"),
                c.served_pfs_direct);
    out.counter("ftc_client_timeouts_total", node_label, c.timeouts);
    out.counter("ftc_client_nodes_flagged_total", node_label, c.nodes_flagged);
    out.counter("ftc_client_ring_updates_total", node_label, c.ring_updates);
    out.counter("ftc_client_checksum_failures_total", node_label,
                c.checksum_failures);
    out.counter("ftc_client_replicas_pushed_total", node_label,
                c.replicas_pushed);
    out.counter("ftc_client_hedges_total", with_outcome("launched"),
                c.hedges_launched);
    out.counter("ftc_client_hedges_total", with_outcome("hedge_win"),
                c.hedge_wins);
    out.counter("ftc_client_hedges_total", with_outcome("primary_win"),
                c.primary_wins_after_hedge);
    out.counter("ftc_client_hedges_total", with_outcome("to_pfs"),
                c.hedges_to_pfs);
    out.counter("ftc_client_probes_sent_total", node_label, c.probes_sent);
    out.counter("ftc_client_nodes_reinstated_total", node_label,
                c.nodes_reinstated);
    out.counter("ftc_client_suspicions_reported_total", node_label,
                c.suspicions_reported);
    out.counter("ftc_client_stale_view_hints_total", node_label,
                c.stale_view_hints);
    out.counter("ftc_client_epoch_fast_forwards_total", node_label,
                c.epoch_fast_forwards);
    out.counter("ftc_client_busy_rejections_total", node_label,
                c.busy_rejections);
    out.counter("ftc_client_retries_denied_total", node_label,
                c.retries_denied_by_budget);
    out.counter("ftc_client_deadline_give_ups_total", node_label,
                c.deadline_give_ups);
    // Skew-tolerant placement (all zero with the knobs off):
    out.counter("ftc_ring_load_hints_total", node_label,
                c.load_hints_observed);
    out.counter("ftc_ring_spilled_reads_total", node_label, c.spilled_reads);
    out.counter("ftc_ring_load_spread_reads_total", node_label,
                c.load_spread_reads);
    out.counter("ftc_ring_hot_promotions_total", node_label,
                c.hot_promotions);
    out.counter("ftc_ring_hot_demotions_total", node_label, c.hot_demotions);
    out.counter("ftc_ring_hot_invalidations_total", node_label,
                c.hot_invalidations);
    // Warm failover (all zero with warm_standby off):
    out.counter("ftc_client_warm_pushes_total", node_label, c.warm_pushes);
    out.counter("ftc_client_warm_restores_total", node_label, c.warm_restores);
    out.counter("ftc_client_warm_deferred_total", node_label, c.warm_deferred);
    out.counter("ftc_client_warm_invalidations_total", node_label,
                c.warm_invalidations);
    // Epoch-ahead prefetch / p2p recache (all zero with prefetch.* off):
    out.counter("ftc_prefetch_planned_total", node_label, c.prefetch_planned);
    out.counter("ftc_prefetch_pulls_total", node_label, c.prefetch_pulls);
    out.counter("ftc_prefetch_pulls_outcome_total", with_outcome("hit"),
                c.prefetch_hits);
    out.counter("ftc_prefetch_pulls_outcome_total", with_outcome("miss"),
                c.prefetch_misses);
    out.counter("ftc_prefetch_pulls_outcome_total", with_outcome("deferred"),
                c.prefetch_deferred);
    out.counter("ftc_prefetch_local_hits_total", node_label,
                c.prefetch_local_hits);
    out.counter("ftc_p2p_rescues_total", node_label, c.p2p_rescues);
    out.counter("ftc_p2p_bytes_total", node_label, c.p2p_bytes);
    // Partition tolerance (all zero with fencing off / no partitions):
    out.counter("ftc_client_fenced_puts_total", node_label, c.fenced_puts);
    out.counter("ftc_client_reconcile_repushes_total", node_label,
                c.reconcile_repushes);
    const LatencyRecorder::BucketSnapshot lat =
        clients_[n]->latency().cumulative_buckets(kLatencyBoundsUs);
    out.histogram("ftc_client_read_latency_us", node_label, kLatencyBoundsUs,
                  lat.cumulative, lat.count, lat.sum);

    const HvacServer::Stats s = servers_[n]->stats_snapshot();
    out.counter("ftc_server_reads_total", node_label, s.reads);
    out.counter("ftc_server_cache_hits_total", node_label, s.cache_hits);
    out.counter("ftc_server_cache_misses_total", node_label, s.cache_misses);
    out.counter("ftc_server_pfs_fetches_total", node_label, s.pfs_fetches);
    out.counter("ftc_server_recache_enqueued_total", node_label,
                s.recache_enqueued);
    out.counter("ftc_server_recache_completed_total", node_label,
                s.recache_completed);
    out.counter("ftc_server_replicas_stored_total", node_label,
                s.replicas_stored);
    out.counter("ftc_server_warm_replicas_stored_total", node_label,
                s.warm_replicas_stored);
    out.counter("ftc_server_stale_replica_puts_total", node_label,
                s.stale_replica_puts);
    out.counter("ftc_server_warm_replica_bytes_total", node_label,
                s.warm_replica_bytes);
    out.counter("ftc_server_payload_bytes_copied_total", node_label,
                s.payload_bytes_copied);
    out.counter("ftc_server_evictions_total", node_label, s.evictions);
    out.counter("ftc_server_expired_on_arrival_total", node_label,
                s.expired_on_arrival);
    out.counter("ftc_server_peer_gets_total", node_label, s.peer_gets);
    out.counter("ftc_server_peer_get_hits_total", node_label,
                s.peer_get_hits);
    out.counter("ftc_server_peer_get_bytes_total", node_label,
                s.peer_get_bytes);
    out.counter("ftc_server_fenced_writes_total", node_label,
                s.fenced_writes);
    out.counter("ftc_server_stale_epoch_puts_total", node_label,
                s.stale_epoch_puts_accepted);
    out.gauge("ftc_server_cache_used_bytes", node_label,
              static_cast<double>(s.used_bytes));
    out.gauge("ftc_server_cache_capacity_bytes", node_label,
              static_cast<double>(servers_[n]->cache_capacity_bytes()));

    if (servers_[n]->tiered()) {
      // Tiered-store series (PR 6 convention: one family per concept,
      // dimensions as labels).  Absent entirely with tiering off, like
      // the pfs_guard block above.
      const ftc::store::StoreStats st = servers_[n]->store_stats();
      const auto with_tier = [&](const char* tier) {
        obs::Labels labels = node_label;
        labels.emplace_back("tier", tier);
        return labels;
      };
      obs::Labels policy_label = node_label;
      policy_label.emplace_back("policy",
                                ftc::store::policy_kind_name(
                                    servers_[n]->config().store.policy));
      out.gauge("ftc_store_tier_used_bytes", with_tier("ram"),
                static_cast<double>(st.ram_used_bytes));
      out.gauge("ftc_store_tier_used_bytes", with_tier("nvme"),
                static_cast<double>(st.nvme_used_bytes));
      out.counter("ftc_store_hits_total", with_tier("ram"), st.hot_hits);
      out.counter("ftc_store_hits_total", with_tier("nvme"), st.cold_hits);
      out.counter("ftc_store_misses_total", node_label, st.misses);
      out.counter("ftc_store_demotions_total", node_label, st.demotions);
      out.counter("ftc_store_promotions_total", node_label, st.promotions);
      out.counter("ftc_store_evictions_total", policy_label, st.evictions);
      out.counter("ftc_store_reclaim_runs_total", node_label,
                  st.reclaim_runs);
      out.counter("ftc_store_overflow_writes_total", node_label,
                  st.overflow_writes);
      out.counter("ftc_store_manifest_restored_total", node_label,
                  st.manifest_restored);
      out.counter("ftc_store_manifest_rejected_stale_total", node_label,
                  st.manifest_rejected_stale);
      const double lookups =
          static_cast<double>(st.hot_hits + st.cold_hits + st.misses);
      out.gauge("ftc_store_hit_ratio", node_label,
                lookups > 0.0
                    ? static_cast<double>(st.hot_hits + st.cold_hits) / lookups
                    : 0.0);
    }

    if (const PfsFetchGuard* guard = servers_[n]->pfs_guard()) {
      const PfsFetchGuard::Stats g = guard->stats_snapshot();
      out.counter("ftc_pfs_guard_fetches_total", node_label, g.fetches);
      out.counter("ftc_pfs_guard_coalesced_total", node_label, g.coalesced);
      out.counter("ftc_pfs_guard_rejections_total", with_outcome("slots"),
                  g.slot_rejections);
      out.counter("ftc_pfs_guard_rejections_total", with_outcome("breaker"),
                  g.breaker_rejections);
      out.counter("ftc_pfs_guard_breaker_trips_total", node_label,
                  g.breaker_trips);
      out.gauge("ftc_pfs_guard_breaker_open", node_label,
                guard->breaker_open() ? 1.0 : 0.0);
    }

    const rpc::Transport::EndpointStats t = transport_.stats(n);
    out.counter("ftc_transport_received_total", node_label, t.received);
    out.counter("ftc_transport_received_data_total", node_label,
                t.received_data);
    out.counter("ftc_transport_handled_total", node_label, t.handled);
    out.counter("ftc_transport_dropped_total", node_label, t.dropped);
    out.counter("ftc_transport_requests_shed_total", node_label,
                t.requests_shed);
    out.counter("ftc_transport_partition_dropped_total", node_label,
                t.partition_dropped);
    out.counter("ftc_transport_duplicated_total", node_label, t.duplicated);
    out.counter("ftc_transport_reordered_total", node_label, t.reordered);

    if (n < static_cast<NodeId>(agents_.size())) {
      const membership::MembershipAgent::Stats m =
          agents_[n]->stats_snapshot();
      out.gauge("ftc_swim_epoch", node_label, static_cast<double>(m.epoch));
      out.gauge("ftc_swim_members_alive", node_label,
                static_cast<double>(m.members_alive));
      out.gauge("ftc_swim_members_suspect", node_label,
                static_cast<double>(m.members_suspect));
      out.gauge("ftc_swim_members_failed", node_label,
                static_cast<double>(m.members_failed));
      out.counter("ftc_swim_probes_sent_total", node_label, m.probes_sent);
      out.counter("ftc_swim_indirect_probes_total", node_label,
                  m.indirect_probes_sent);
      out.counter("ftc_swim_acks_received_total", node_label, m.acks_received);
      out.counter("ftc_swim_suspicions_total", node_label, m.suspicions);
      out.counter("ftc_swim_confirms_total", node_label, m.confirms);
      out.counter("ftc_swim_refutations_total", node_label, m.refutations);
      out.counter("ftc_swim_reinstatements_total", node_label,
                  m.reinstatements);
      out.counter("ftc_swim_joins_total", node_label, m.joins);
      out.counter("ftc_swim_gossip_claims_sent_total", node_label,
                  m.gossip_claims_sent);
      out.counter("ftc_swim_claims_applied_total", node_label,
                  m.claims_applied);
      out.counter("ftc_swim_fast_forwards_total", node_label, m.fast_forwards);
      out.counter("ftc_swim_false_suspicions_total", node_label,
                  m.false_suspicions);
      out.counter("ftc_swim_confirms_deferred_total", node_label,
                  m.confirms_deferred);
      out.counter("ftc_swim_duplicate_verdicts_total", node_label,
                  m.duplicate_verdicts);
    }

    if (n < static_cast<NodeId>(recorders_.size())) {
      out.counter("ftc_obs_records_written_total", node_label,
                  recorders_[n]->records_written());
    }
  }
}

std::size_t Cluster::total_cached_files() const {
  std::size_t total = 0;
  for (const auto& server : servers_) total += server->cached_file_count();
  return total;
}

}  // namespace ftc::cluster
