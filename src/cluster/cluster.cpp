#include "cluster/cluster.hpp"

#include "common/string_util.hpp"

namespace ftc::cluster {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), pfs_(config.pfs_read_latency) {
  std::vector<NodeId> members;
  members.reserve(config_.node_count);
  for (NodeId n = 0; n < config_.node_count; ++n) members.push_back(n);

  servers_.reserve(config_.node_count);
  clients_.reserve(config_.node_count);
  for (NodeId n = 0; n < config_.node_count; ++n) {
    servers_.push_back(std::make_unique<HvacServer>(n, pfs_, config_.server));
    HvacServer* server = servers_.back().get();
    transport_.register_endpoint(
        n, [server](const rpc::RpcRequest& request) {
          return server->handle(request);
        });
    clients_.push_back(std::make_unique<HvacClient>(
        n, transport_, pfs_, members, config_.client));
  }
}

Cluster::~Cluster() {
  // Hedge legs and reinstatement probes can still be in flight when a
  // test ends (the client already took its answer and moved on).  Stop
  // and join every endpoint worker before the servers their handlers
  // point at are destroyed, then drain the async completion pool so no
  // callback outlives the cluster.
  for (NodeId n = 0; n < servers_.size(); ++n) {
    (void)transport_.unregister_endpoint(n);
  }
  transport_.drain_async();
}

std::vector<std::string> Cluster::stage_dataset(std::uint32_t count,
                                                std::uint32_t bytes) {
  const std::string prefix = "/lustre/orion/cosmoUniverse";
  pfs_.populate_synthetic(prefix, count, bytes);
  std::vector<std::string> paths;
  paths.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    paths.push_back(prefix + "/file_" + zero_pad(i, 7) + ".tfrecord");
  }
  return paths;
}

void Cluster::warm_caches(const std::vector<std::string>& paths) {
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const NodeId reader = static_cast<NodeId>(i % config_.node_count);
    (void)clients_[reader]->read_file(paths[i]);
  }
  for (auto& server : servers_) server->flush_data_mover();
}

void Cluster::fail_node(NodeId node) { transport_.kill(node); }

void Cluster::restore_node(NodeId node, bool lose_cache) {
  if (lose_cache && node < servers_.size()) servers_[node]->clear_cache();
  transport_.revive(node);
}

NodeId Cluster::add_node() {
  const auto node = static_cast<NodeId>(servers_.size());
  servers_.push_back(std::make_unique<HvacServer>(node, pfs_, config_.server));
  HvacServer* server = servers_.back().get();
  transport_.register_endpoint(
      node,
      [server](const rpc::RpcRequest& request) {
        return server->handle(request);
      });
  std::vector<NodeId> members;
  members.reserve(servers_.size());
  for (NodeId n = 0; n <= node; ++n) members.push_back(n);
  clients_.push_back(std::make_unique<HvacClient>(node, transport_, pfs_,
                                                  members, config_.client));
  for (NodeId n = 0; n < node; ++n) clients_[n]->add_server(node);
  config_.node_count = static_cast<std::uint32_t>(servers_.size());
  return node;
}

std::size_t Cluster::total_cached_files() const {
  std::size_t total = 0;
  for (const auto& server : servers_) total += server->cached_file_count();
  return total;
}

}  // namespace ftc::cluster
