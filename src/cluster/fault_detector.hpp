// fault_detector.hpp - Per-node health state machine for gray failures.
//
// The paper's clients detect failures autonomously: every RPC timeout to a
// node increments a counter; when the counter reaches TIMEOUT_LIMIT the
// node is flagged, and a successful response resets the counter (which is
// what suppresses false positives from transient network delays).  The
// paper stops there — its model is crash-stop, a flagged node is gone
// forever.  Sec III's own failure analysis shows that many HPC faults are
// transient (I/O stalls, network hiccups), so this detector generalizes
// the counter into a four-state machine:
//
//   kHealthy ──timeout──▶ kSuspect ──limit reached──▶ kProbation ─▶ kFailed
//      ▲                     │                            │
//      └──────success────────┘        probe success       │
//      ◀──────────────────────────────(reinstated)────────┘
//
//   - kSuspect: timeouts seen but below the limit; a success returns the
//     node to kHealthy (exactly the paper's counter reset).
//   - kProbation: the limit tripped.  The node is *out of service* (the
//     client removes it from its ring) but not written off: reinstatement
//     probes are due on an exponential-backoff schedule, and a successful
//     probe returns the node to kHealthy so the client can re-add it via
//     the elastic add_server path.
//   - kFailed: terminal crash-stop.  Reached when reinstatement is
//     disabled (the paper's model, still the default), or when a node
//     flaps — gets reinstated and re-flagged — more than `max_flaps`
//     times, so a persistently unreliable node cannot thrash the ring.
//
// Pure policy with explicit time injection (callers pass `now`), shared
// by the threaded and DES substrates and trivially unit-testable.
#pragma once

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace ftc::cluster {

/// Alias of the library-wide node identifier (see common/types.hpp).
using NodeId = ftc::NodeId;

enum class NodeHealth : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kProbation = 2,
  kFailed = 3,
};

const char* node_health_name(NodeHealth health);

class FaultDetector {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Consecutive timeouts that take a node out of service (the
    /// artifact's TIMEOUT_LIMIT; clamped to >= 1).
    std::uint32_t timeout_limit = 3;
    /// When false (the paper's crash-stop model), tripping the limit goes
    /// straight to kFailed and the node never returns.  When true it goes
    /// to kProbation and may be reinstated by a successful probe.
    bool allow_reinstatement = false;
    /// Delay before the first reinstatement probe after entering
    /// probation; doubles after every failed probe.
    std::chrono::milliseconds probe_backoff{50};
    /// Upper bound for the probe backoff (the node may come back hours
    /// later; probing never stops, it just slows to this cadence).
    std::chrono::milliseconds probe_backoff_cap{2000};
    /// Probation entries after the first before the node is declared
    /// terminally kFailed (a flapping node is worse than a dead one:
    /// every reinstatement moves ring ownership back and forth).
    std::uint32_t max_flaps = 3;
  };

  explicit FaultDetector(Options options);
  /// Crash-stop compatibility constructor: the paper's behaviour
  /// (reinstatement disabled), used by the DES substrate and the NoFT /
  /// PFS-redirect modes.
  explicit FaultDetector(std::uint32_t timeout_limit = 3);

  /// Records one timeout against `node`.  Returns true exactly when this
  /// call takes the node out of service (kHealthy/kSuspect -> kProbation
  /// or kFailed) — the signal for ring surgery.
  bool record_timeout(NodeId node, Clock::time_point now = Clock::now());

  /// Records a successful response: kSuspect -> kHealthy (counter reset).
  /// Ignored for out-of-service nodes — reinstatement only ever goes
  /// through a probe, so a late response cannot resurrect a node the
  /// client already routed around.
  void record_success(NodeId node);

  [[nodiscard]] NodeHealth health(NodeId node) const;
  /// Terminal failure only (crash-stop verdict).
  [[nodiscard]] bool is_failed(NodeId node) const;
  /// kProbation or kFailed: the node must receive no data traffic.
  [[nodiscard]] bool is_out_of_service(NodeId node) const;

  /// Probation nodes whose next probe deadline has passed.  Empty in the
  /// common case (nothing in probation) at O(1) cost.
  [[nodiscard]] std::vector<NodeId> probe_candidates(
      Clock::time_point now = Clock::now()) const;

  /// Marks a probe as launched: pushes the node's deadline one backoff
  /// step out so concurrent/back-to-back reads do not duplicate probes.
  void record_probe_launch(NodeId node, Clock::time_point now = Clock::now());

  /// Probe outcome.  Success returns true when the node was reinstated
  /// (kProbation -> kHealthy, counters cleared); the caller re-adds it to
  /// its placement.  Failure escalates the backoff.
  bool record_probe_success(NodeId node);
  void record_probe_failure(NodeId node, Clock::time_point now = Clock::now());

  /// Forgets all local evidence about `node` (back to kHealthy from any
  /// state, including terminal kFailed).  Only the membership layer calls
  /// this: a cluster-wide reinstatement event outranks local history —
  /// local probes never do, they must go through record_probe_success.
  void reset_node(NodeId node);

  [[nodiscard]] std::uint32_t timeout_count(NodeId node) const;
  [[nodiscard]] std::uint32_t timeout_limit() const {
    return options_.timeout_limit;
  }
  /// Times this node has re-entered probation after a reinstatement.
  [[nodiscard]] std::uint32_t flap_count(NodeId node) const;

  /// Terminally failed nodes.
  [[nodiscard]] std::vector<NodeId> failed_nodes() const;
  [[nodiscard]] std::size_t failed_count() const;
  /// Nodes currently in probation.
  [[nodiscard]] std::vector<NodeId> probation_nodes() const;

  /// Total timeouts observed across all nodes (telemetry).
  [[nodiscard]] std::uint64_t total_timeouts() const {
    return total_timeouts_;
  }
  /// Counter resets caused by late successes — each one is a false
  /// positive avoided (the ablation bench reports this).
  [[nodiscard]] std::uint64_t suppressed_false_positives() const {
    return suppressed_;
  }
  /// Probation -> healthy transitions (successful probes).
  [[nodiscard]] std::uint64_t reinstatements() const {
    return reinstatements_;
  }

 private:
  struct NodeState {
    NodeHealth health = NodeHealth::kHealthy;
    std::uint32_t consecutive_timeouts = 0;
    std::uint32_t flaps = 0;  ///< probation re-entries after reinstatement
    std::uint32_t failed_probes = 0;
    Clock::time_point next_probe{};
  };

  /// kHealthy/kSuspect -> out of service; returns true (the transition).
  bool take_out_of_service(NodeState& state, Clock::time_point now);
  [[nodiscard]] std::chrono::milliseconds backoff_after(
      std::uint32_t failed_probes) const;

  Options options_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::size_t probation_count_ = 0;  ///< probe_candidates fast path
  std::uint64_t total_timeouts_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t reinstatements_ = 0;
};

}  // namespace ftc::cluster
