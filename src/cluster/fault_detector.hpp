// fault_detector.hpp - Timeout-counting failure detection (Sec IV-A).
//
// The paper's clients detect failures autonomously: every RPC timeout to a
// node increments a counter; when the counter reaches TIMEOUT_LIMIT the
// node is flagged failed, permanently (crash-stop model — drained Frontier
// nodes do not rejoin a running job).  A successful response resets the
// counter, which is what suppresses false positives from transient network
// delays.  Pure policy, shared verbatim by the threaded and DES substrates.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ftc::cluster {

using NodeId = std::uint32_t;

class FaultDetector {
 public:
  /// `timeout_limit` = consecutive timeouts that flag a node as failed
  /// (the artifact's TIMEOUT_LIMIT; must be >= 1).
  explicit FaultDetector(std::uint32_t timeout_limit = 3);

  /// Records one timeout against `node`.  Returns true exactly when this
  /// call transitions the node to the failed state.
  bool record_timeout(NodeId node);

  /// Records a successful response: clears the node's counter.  Ignored
  /// for already-failed nodes (failure is sticky).
  void record_success(NodeId node);

  [[nodiscard]] bool is_failed(NodeId node) const;
  [[nodiscard]] std::uint32_t timeout_count(NodeId node) const;
  [[nodiscard]] std::uint32_t timeout_limit() const { return timeout_limit_; }
  [[nodiscard]] std::vector<NodeId> failed_nodes() const;
  [[nodiscard]] std::size_t failed_count() const { return failed_.size(); }

  /// Total timeouts observed across all nodes (telemetry).
  [[nodiscard]] std::uint64_t total_timeouts() const {
    return total_timeouts_;
  }
  /// Counter resets caused by late successes — each one is a false
  /// positive avoided (the ablation bench reports this).
  [[nodiscard]] std::uint64_t suppressed_false_positives() const {
    return suppressed_;
  }

 private:
  std::uint32_t timeout_limit_;
  std::unordered_map<NodeId, std::uint32_t> counters_;
  std::unordered_set<NodeId> failed_;
  std::uint64_t total_timeouts_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace ftc::cluster
