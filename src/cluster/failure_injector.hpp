// failure_injector.hpp - Programmable, seed-deterministic fault injection.
//
// Two layers:
//
// 1. Crash-stop failure *planning* (the paper's Sec V-A3 methodology):
//    the experiments disable nodes "at a predefined or random point in
//    time after the first epoch" (the SLURM `State=DRAIN` method).
//    plan_failures() owns the randomization — victims are drawn without
//    replacement from a seeded Rng so every run is reproducible, and the
//    kill action is a callback so the same plan drives the threaded
//    Cluster and the DES experiment.
//
// 2. Gray-failure *injection* (GrayFailureInjector): the paper's model is
//    crash-stop, but Sec III's failure analysis shows many HPC faults are
//    transient — I/O stalls, lossy links, nodes that flap in and out.
//    GrayFailureInjector programs those onto the rpc::Transport path:
//    per-node added latency, probabilistic drops, permanent kills, and
//    flapping schedules, all driven by an explicit tick() so scenarios
//    are deterministic for a fixed seed and tick sequence (no wall-clock
//    coupling).  This is the adversary the probation/reinstatement and
//    hedged-read machinery is tested against.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/flight_recorder.hpp"
#include "rpc/transport.hpp"

namespace ftc::cluster {

struct FailurePlanParams {
  std::uint32_t node_count = 0;
  /// Number of single-node failures to inject (the paper injects failures
  /// five times per run in Fig 5(b)).
  std::uint32_t failure_count = 1;
  /// Failures are placed uniformly at random within (epoch_begin,
  /// epoch_end) epochs, exclusive of epoch 0 (the warm-up epoch completes
  /// before any failure, per the methodology).
  std::uint32_t first_eligible_epoch = 1;
  std::uint32_t total_epochs = 5;
  std::uint64_t seed = 1234;
};

struct PlannedFailure {
  std::uint32_t victim = 0;
  std::uint32_t epoch = 0;       ///< epoch during which the node dies
  double epoch_fraction = 0.0;   ///< position within that epoch [0,1)
};

/// Draws a reproducible failure schedule: distinct victims, random epochs
/// in [first_eligible_epoch, total_epochs), sorted by time.
std::vector<PlannedFailure> plan_failures(const FailurePlanParams& params);

/// Convenience driver for substrates with an immediate kill callback:
/// executes every planned failure now (ordering preserved).
void execute_plan(const std::vector<PlannedFailure>& plan,
                  const std::function<void(std::uint32_t)>& kill_node);

/// Programs gray failures onto a Transport.  Latency/drop/kill faults
/// apply immediately and persist until cleared; flap schedules advance
/// one phase step per tick() call.  All randomness (flap phase jitter)
/// comes from the constructor seed, so a scenario is reproduced exactly
/// by replaying the same call/tick sequence.
class GrayFailureInjector {
 public:
  GrayFailureInjector(rpc::Transport& transport, std::uint64_t seed = 0);

  // --- persistent faults (applied now, cleared explicitly) -------------
  /// Slow node: every request to `node` is delayed by `added` before
  /// service.  The canonical gray failure — alive, correct, late.
  void make_slow(NodeId node, std::chrono::milliseconds added);
  void clear_slow(NodeId node);

  /// Lossy link: each request independently dropped with probability p.
  /// The drop stream is derived from the injector seed and `node`.
  void make_lossy(NodeId node, double drop_probability);
  void clear_lossy(NodeId node);

  /// Crash-stop kill / recovery (SLURM drain and un-drain).
  void kill(NodeId node);
  void revive(NodeId node);

  /// Message duplication: requests to `node` are delivered twice with
  /// probability p (at-least-once fabric re-sends).  Stream derived from
  /// the injector seed and `node`, like make_lossy.
  void make_duplicating(NodeId node, double probability);
  void clear_duplicating(NodeId node);

  /// Bounded reordering: requests to `node` overtake up to
  /// `max_displacement` earlier arrivals with probability p.
  void make_reordering(NodeId node, double probability,
                       std::uint32_t max_displacement);
  void clear_reordering(NodeId node);

  // --- network partitions ----------------------------------------------
  /// Severs the fabric between two node sets, effective immediately: with
  /// `one_way` false (symmetric split / split-brain) no message crosses in
  /// either direction; with `one_way` true only side_a -> side_b traffic
  /// is cut (the asymmetric partition that mass-suspects healthy nodes —
  /// side_a hears side_b fine but its probes never arrive).  Both sides
  /// stay alive and keep serving within their side.  Composes with
  /// scheduled partitions; heal_partition() clears the manual split.
  void partition(std::vector<NodeId> side_a, std::vector<NodeId> side_b,
                 bool one_way = false);

  /// Restores connectivity cut by partition(); scheduled partitions keep
  /// their own clocks.
  void heal_partition();

  /// Deterministic split-brain schedule: the partition activates when
  /// ticks() reaches `start_tick` and heals `duration_ticks` later.
  /// Multiple schedules compose (links blocked by any active schedule
  /// stay blocked).
  void schedule_partition(std::vector<NodeId> side_a,
                          std::vector<NodeId> side_b,
                          std::uint64_t start_tick,
                          std::uint64_t duration_ticks, bool one_way = false);

  /// True while any manual or scheduled partition is blocking links.
  [[nodiscard]] bool partition_active() const;

  /// Attaches a recorder for kPartitionStart/kPartitionHeal timeline
  /// events (not owned; nullptr detaches).
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  // --- scheduled faults (advance via tick()) ---------------------------
  /// Flapping node: alternates `down_ticks` dead and `up_ticks` alive,
  /// starting at a seed-jittered offset within its first up phase.  The
  /// worst adversary for naive detectors: it keeps coming back just long
  /// enough to be trusted again.
  void add_flap(NodeId node, std::uint32_t down_ticks,
                std::uint32_t up_ticks);
  void remove_flap(NodeId node);

  /// Advances every flap schedule by one tick, applying kill/revive at
  /// phase boundaries.  The caller chooses what a tick means (a bench
  /// pass, a DES step, a wall-clock quantum).
  void tick();

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  /// True while `node` is in a killed phase (flap down, or kill()ed).
  [[nodiscard]] bool is_down(NodeId node) const;
  /// Total kill/revive transitions applied by flap schedules (telemetry).
  [[nodiscard]] std::uint64_t flap_transitions() const {
    return flap_transitions_;
  }

 private:
  struct FlapSchedule {
    std::uint32_t down_ticks = 1;
    std::uint32_t up_ticks = 1;
    std::uint32_t phase = 0;  ///< ticks into the current up+down period
    bool down = false;
  };

  struct PartitionSpec {
    std::vector<NodeId> side_a;
    std::vector<NodeId> side_b;
    bool one_way = false;
  };

  struct ScheduledPartition {
    PartitionSpec spec;
    std::uint64_t start_tick = 0;
    std::uint64_t end_tick = 0;
    bool active = false;
  };

  /// Recomputes every endpoint's blocked-sender set as the union over the
  /// manual partition and all active schedules, and pushes the result to
  /// the transport (clearing endpoints no longer involved).
  void apply_partitions();

  rpc::Transport& transport_;
  Rng rng_;
  std::uint64_t seed_;
  std::uint64_t ticks_ = 0;
  std::uint64_t flap_transitions_ = 0;
  std::unordered_map<NodeId, FlapSchedule> flaps_;
  bool manual_partition_ = false;
  PartitionSpec manual_spec_;
  std::vector<ScheduledPartition> scheduled_partitions_;
  /// Endpoints holding a non-empty block set right now (for clearing).
  std::vector<NodeId> blocked_endpoints_;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace ftc::cluster
