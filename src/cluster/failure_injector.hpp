// failure_injector.hpp - Randomized crash-stop failure injection.
//
// The experiments disable nodes "at a predefined or random point in time
// after the first epoch" (Sec V-A3, the SLURM `State=DRAIN` method).  This
// helper owns the randomization: victims are drawn without replacement
// from the surviving set with a seeded Rng so every run is reproducible.
// It is substrate-agnostic — the kill action is a callback, so the same
// plan drives the threaded Cluster and the DES experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace ftc::cluster {

struct FailurePlanParams {
  std::uint32_t node_count = 0;
  /// Number of single-node failures to inject (the paper injects failures
  /// five times per run in Fig 5(b)).
  std::uint32_t failure_count = 1;
  /// Failures are placed uniformly at random within (epoch_begin,
  /// epoch_end) epochs, exclusive of epoch 0 (the warm-up epoch completes
  /// before any failure, per the methodology).
  std::uint32_t first_eligible_epoch = 1;
  std::uint32_t total_epochs = 5;
  std::uint64_t seed = 1234;
};

struct PlannedFailure {
  std::uint32_t victim = 0;
  std::uint32_t epoch = 0;       ///< epoch during which the node dies
  double epoch_fraction = 0.0;   ///< position within that epoch [0,1)
};

/// Draws a reproducible failure schedule: distinct victims, random epochs
/// in [first_eligible_epoch, total_epochs), sorted by time.
std::vector<PlannedFailure> plan_failures(const FailurePlanParams& params);

/// Convenience driver for substrates with an immediate kill callback:
/// executes every planned failure now (ordering preserved).
void execute_plan(const std::vector<PlannedFailure>& plan,
                  const std::function<void(std::uint32_t)>& kill_node);

}  // namespace ftc::cluster
