#include "cluster/hvac_server.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "hash/crc32.hpp"
#include "membership/swim.hpp"

namespace ftc::cluster {

namespace {
std::uint32_t payload_crc(const common::Buffer& payload) {
  // Memoized in the buffer's shared control block: computed once per
  // payload lifetime (first serve), free on every later hit.
  return payload.checksum(
      [](std::string_view bytes) { return hash::crc32(bytes); });
}
}  // namespace

Status HvacServerConfig::validate() const {
  if (endpoint_workers == 0) {
    return Status::invalid_argument("endpoint_workers must be >= 1");
  }
  if (admission_control && admission_queue_limit < 1) {
    return Status::invalid_argument(
        "admission_control needs admission_queue_limit >= 1");
  }
  if (pfs_singleflight && pfs_guard.max_concurrent_fetches == 0) {
    return Status::invalid_argument(
        "pfs_singleflight needs max_concurrent_fetches >= 1");
  }
  if (pfs_singleflight && pfs_guard.breaker_failure_threshold == 0) {
    return Status::invalid_argument(
        "pfs_singleflight needs breaker_failure_threshold >= 1");
  }
  if (report_load && (load_report_alpha <= 0.0 || load_report_alpha > 1.0)) {
    return Status::invalid_argument("load_report_alpha must be in (0, 1]");
  }
  if (const Status tiered = store.validate(); !tiered.is_ok()) return tiered;
  return Status::ok();
}

HvacServer::HvacServer(NodeId id, PfsStore& pfs,
                       const HvacServerConfig& config,
                       std::shared_ptr<ftc::store::NvmeDevice> device)
    : id_(id), pfs_(pfs), config_(config),
      recache_policy_(config.async_data_mover) {
  const Status valid = config_.validate();
  if (!valid.is_ok()) {
    throw std::invalid_argument("HvacServerConfig: " + valid.message());
  }
  if (config_.store.tiering) {
    auto tiered = std::make_unique<ftc::store::TieredCacheStore>(
        config_.store, std::move(device));
    tiered_ = tiered.get();
    cache_ = std::move(tiered);
  } else {
    cache_ = std::make_unique<ftc::store::LegacyStoreAdapter>(
        config_.cache_capacity_bytes, config_.eviction_policy,
        config_.cache_shards);
  }
  if (config_.pfs_singleflight) {
    pfs_guard_ = std::make_unique<PfsFetchGuard>(config_.pfs_guard);
  }
  if (config_.async_data_mover) {
    mover_pool_ = std::make_unique<common::ThreadPool>(
        config_.data_mover_threads == 0 ? 1 : config_.data_mover_threads);
  }
}

// mover_pool_'s destructor drains queued recache tasks before the other
// members go away (it is the last-declared member).
HvacServer::~HvacServer() = default;

rpc::RpcResponse HvacServer::handle(const rpc::RpcRequest& request) {
  // Deadline shed: work whose deadline passed while it sat in the ingress
  // queue is answered kCancelled without being executed — the client gave
  // up already, and doing it anyway is exactly the wasted work that turns
  // an overload into a metastable storm.  Membership verbs never carry
  // deadlines, so detection traffic is unaffected.
  if (rpc::deadline_expired(request.deadline_ns)) {
    stats_.expired_on_arrival.fetch_add(1, std::memory_order_relaxed);
    if (recorder_ != nullptr && request.trace.sampled) {
      recorder_->record_event(obs::RecordKind::kServerShed,
                              request.trace.child(), id_,
                              static_cast<std::uint32_t>(StatusCode::kCancelled),
                              0, "deadline");
    }
    rpc::RpcResponse response;
    response.code = StatusCode::kCancelled;
    return response;
  }
  if (membership_ != nullptr) {
    switch (request.op) {
      case rpc::Op::kSwimPing:
      case rpc::Op::kSwimPingReq:
      case rpc::Op::kSwimVerdict:
      case rpc::Op::kMembershipSync:
        return membership_->handle(request);
      default: {
        // Data path: fold the request's piggybacked gossip, serve, then
        // stamp the response with our epoch / gossip / stale-view delta.
        membership_->observe_request(request);
        // Write fence: a mutating op carrying a ring epoch older than our
        // view was planned against a placement that no longer exists —
        // typically by a client stranded on the minority side of a
        // partition.  Refuse it BEFORE dispatch; the stamped response
        // carries the kStaleView delta, so the sender fast-forwards and
        // re-plans against the live ring before retrying.  Reads are
        // never fenced (a stale reader only risks a miss, not damage).
        const bool mutating =
            request.op == rpc::Op::kPut || request.op == rpc::Op::kEvict;
        if (mutating && request.ring_epoch != rpc::kEpochUnaware &&
            request.ring_epoch < membership_->epoch()) {
          if (config_.fencing.enabled) {
            stats_.fenced_writes.fetch_add(1, std::memory_order_relaxed);
            if (recorder_ != nullptr) {
              recorder_->record_event(
                  obs::RecordKind::kPartitionFence, request.trace.child(),
                  id_, static_cast<std::uint32_t>(membership_->epoch()),
                  request.ring_epoch, request.path);
            }
            rpc::RpcResponse response;
            response.code = StatusCode::kFencedEpoch;
            membership_->stamp_response(request, response);
            return response;
          }
          // Fencing off: accept as before, but count the exposure so the
          // partition bench can prove the fence closes it.
          stats_.stale_epoch_puts_accepted.fetch_add(
              1, std::memory_order_relaxed);
        }
        rpc::RpcResponse response = dispatch(request);
        membership_->stamp_response(request, response);
        return response;
      }
    }
  }
  return dispatch(request);
}

rpc::RpcResponse HvacServer::dispatch(const rpc::RpcRequest& request) {
  if (recorder_ != nullptr && request.trace.sampled) {
    const obs::TraceContext ctx = request.trace.child();
    const std::int64_t start = obs::now_ns();
    rpc::RpcResponse response = dispatch_impl(request);
    recorder_->record_span(obs::RecordKind::kServerHandle, ctx, id_, start,
                           obs::now_ns(),
                           static_cast<std::uint32_t>(response.code),
                           response.payload.size(), request.path);
    return response;
  }
  return dispatch_impl(request);
}

rpc::RpcResponse HvacServer::dispatch_impl(const rpc::RpcRequest& request) {
  switch (request.op) {
    case rpc::Op::kReadFile:
      return handle_read(request);
    case rpc::Op::kPing: {
      rpc::RpcResponse response;
      response.code = StatusCode::kOk;
      return response;
    }
    case rpc::Op::kEvict: {
      rpc::RpcResponse response;
      response.code = cache_->erase(request.path) ? StatusCode::kOk
                                                 : StatusCode::kNotFound;
      return response;
    }
    case rpc::Op::kStats: {
      rpc::RpcResponse response;
      const Stats s = stats_snapshot();
      response.payload = common::Buffer(
          "reads=" + std::to_string(s.reads) +
          " hits=" + std::to_string(s.cache_hits) +
          " misses=" + std::to_string(s.cache_misses) +
          " pfs_fetches=" + std::to_string(s.pfs_fetches) +
          " recache_enqueued=" + std::to_string(s.recache_enqueued) +
          " recache_completed=" + std::to_string(s.recache_completed) +
          " replicas_stored=" + std::to_string(s.replicas_stored) +
          " warm_replicas_stored=" + std::to_string(s.warm_replicas_stored) +
          " stale_replica_puts=" + std::to_string(s.stale_replica_puts) +
          " warm_replica_bytes=" + std::to_string(s.warm_replica_bytes) +
          " payload_bytes_copied=" + std::to_string(s.payload_bytes_copied) +
          " evictions=" + std::to_string(s.evictions) +
          " expired_on_arrival=" + std::to_string(s.expired_on_arrival) +
          " pfs_coalesced=" + std::to_string(s.pfs_coalesced) +
          " pfs_breaker_open=" + std::to_string(s.pfs_breaker_open) +
          " fenced_writes=" + std::to_string(s.fenced_writes) +
          " stale_epoch_puts_accepted=" +
          std::to_string(s.stale_epoch_puts_accepted) +
          " used_bytes=" + std::to_string(s.used_bytes) +
          " capacity_bytes=" + std::to_string(cache_->capacity_bytes()) +
          " files=" + std::to_string(cache_->file_count()));
      return response;
    }
    case rpc::Op::kPut: {
      // Backup-replica placement (replication extension): store without
      // touching the PFS.  The stored buffer shares the request's bytes.
      rpc::RpcResponse response;
      const bool stamped = request.replica_generation != 0;
      if (stamped) {
        // Replica freshness: a generation-stamped put must never roll a
        // standby back to a dead ring's placement.  Remember the highest
        // accepted generation per path and refuse anything older with
        // kCancelled — the sender learns a fresher standby already sits
        // here.  Equal generations re-store (idempotent; a retried push
        // after a shed must be able to land).
        std::lock_guard<std::mutex> lock(generation_mu_);
        auto [it, inserted] = replica_generations_.try_emplace(
            request.path, request.replica_generation);
        if (!inserted) {
          if (request.replica_generation < it->second) {
            stats_.stale_replica_puts.fetch_add(1, std::memory_order_relaxed);
            response.code = StatusCode::kCancelled;
            return response;
          }
          it->second = request.replica_generation;
        }
      }
      // The store receives the generation stamp too: the tiered store
      // persists it into the cold-tier manifest, which is what lets a
      // warm-restarted node re-validate survivors instead of re-fetching.
      const Status put =
          cache_->put(request.path, request.payload, request.payload.size(),
                      stamped ? request.replica_generation : 0);
      response.code = put.code();
      if (put.is_ok()) {
        stats_.replicas_stored.fetch_add(1, std::memory_order_relaxed);
        if (stamped) {
          stats_.warm_replicas_stored.fetch_add(1, std::memory_order_relaxed);
          stats_.warm_replica_bytes.fetch_add(request.payload.size(),
                                              std::memory_order_relaxed);
        }
      }
      return response;
    }
    case rpc::Op::kPeerGet: {
      // Peer-to-peer transfer (prefetch extension): serve from NVMe or say
      // kNotFound — by contract this op NEVER touches the PFS, so a storm
      // of peers probing for a lost file costs the filesystem nothing.
      // The response carries our freshness-ledger stamp for the path so a
      // puller that re-places the bytes forwards the right generation.
      rpc::RpcResponse response;
      stats_.peer_gets.fetch_add(1, std::memory_order_relaxed);
      auto cached = cache_->get(request.path);
      if (!cached.is_ok()) {
        response.code = StatusCode::kNotFound;
        return response;
      }
      stats_.peer_get_hits.fetch_add(1, std::memory_order_relaxed);
      response.code = StatusCode::kOk;
      response.cache_hit = true;
      // Zero-copy: the response references the cache entry's bytes.
      response.payload = std::move(cached).value();
      response.checksum = payload_crc(response.payload);
      stats_.peer_get_bytes.fetch_add(response.payload.size(),
                                      std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(generation_mu_);
        auto it = replica_generations_.find(request.path);
        if (it != replica_generations_.end()) {
          response.replica_generation = it->second;
        }
      }
      return response;
    }
    case rpc::Op::kSwimPing:
    case rpc::Op::kSwimPingReq:
    case rpc::Op::kSwimVerdict:
    case rpc::Op::kMembershipSync:
      // Membership verbs on a node with no agent attached (legacy mode):
      // reject rather than fake an ack.
      break;
  }
  rpc::RpcResponse response;
  response.code = StatusCode::kInvalidArgument;
  return response;
}

rpc::RpcResponse HvacServer::handle_read(const rpc::RpcRequest& request) {
  rpc::RpcResponse response;
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  auto cached = cache_->get(request.path);
  if (cached.is_ok()) {
    stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    response.code = StatusCode::kOk;
    response.cache_hit = true;
    // Zero-copy hit: the response references the cache entry's bytes.
    response.payload = std::move(cached).value();
    response.checksum = payload_crc(response.payload);
    return response;
  }
  stats_.cache_misses.fetch_add(1, std::memory_order_relaxed);

  if (pfs_guard_) {
    // Storm-protected miss: coalesce concurrent fetches for this path,
    // bound PFS concurrency, and honor the breaker.  The leader recaches
    // *synchronously* before its flight closes, so a request arriving
    // just after the flight hits the cache instead of starting a second
    // fetch — that double-check is what pins duplicate PFS fetches per
    // lost file at one even when arrivals straddle the flight boundary.
    PfsFetchGuard::Outcome outcome = pfs_guard_->fetch(
        request.path, [this, &request]() -> StatusOr<common::Buffer> {
          auto rechecked = cache_->get(request.path);
          if (rechecked.is_ok()) return std::move(rechecked).value();
          auto fetched = pfs_.read(request.path);
          if (!fetched.is_ok()) return fetched.status();
          stats_.pfs_fetches.fetch_add(1, std::memory_order_relaxed);
          common::Buffer contents = std::move(fetched).value();
          stats_.recache_enqueued.fetch_add(1, std::memory_order_relaxed);
          recache(request.path, contents);
          return contents;
        },
        request.trace);
    if (outcome.rejected_busy) {
      response.code = StatusCode::kBusy;
      response.retry_after_ms = outcome.retry_after_ms;
      return response;
    }
    if (!outcome.result.is_ok()) {
      response.code = outcome.result.status().code();
      return response;
    }
    response.code = StatusCode::kOk;
    response.cache_hit = false;
    response.payload = std::move(outcome.result).value();
    response.checksum = payload_crc(response.payload);
    return response;
  }

  // Miss: fetch from PFS (slow; no cache lock is held here).
  auto from_pfs = pfs_.read(request.path);
  if (!from_pfs.is_ok()) {
    response.code = from_pfs.status().code();
    return response;
  }
  stats_.pfs_fetches.fetch_add(1, std::memory_order_relaxed);
  common::Buffer contents = std::move(from_pfs).value();
  response.code = StatusCode::kOk;
  response.cache_hit = false;
  response.checksum = payload_crc(contents);

  stats_.recache_enqueued.fetch_add(1, std::memory_order_relaxed);
  // The local recache is the degenerate replication plan (no remote
  // targets); its write class carries the old async_data_mover decision.
  placement::PlanContext fill_ctx;
  fill_ctx.path = request.path;
  fill_ctx.primary = id_;
  if (recache_policy_.plan(fill_ctx).write_class ==
      placement::WriteClass::kAsyncWriteBehind) {
    // The recache task shares the response's buffer — enqueueing is a
    // refcount bump, not a payload copy.
    mover_pool_->submit([this, path = request.path, contents] {
      recache(path, contents);
    });
  } else {
    recache(request.path, contents);
  }
  response.payload = std::move(contents);
  return response;
}

void HvacServer::recache(const std::string& path,
                         const common::Buffer& contents) {
  // A PFS fill carries the path's ledger generation if one exists (the
  // bytes just read are at least that fresh), 0 otherwise — so manifest
  // rows written by ordinary fills still survive warm-restart validation.
  const Status put =
      cache_->put(path, contents, contents.size(), replica_generation_of(path));
  if (put.is_ok()) {
    stats_.recache_completed.fetch_add(1, std::memory_order_relaxed);
  } else {
    FTC_LOG(kWarn, "hvac_server")
        << "node " << id_ << " recache failed: " << put.to_string();
  }
}

void HvacServer::flush_data_mover() {
  if (mover_pool_) mover_pool_->wait_idle();
}

void HvacServer::clear_cache() {
  // Drain in-flight recaches first so a mover task cannot repopulate an
  // entry after the clear.
  flush_data_mover();
  cache_->clear();
  // The freshness ledger describes entries that no longer exist; keeping
  // it would make a rejoined node refuse the very standbys that should
  // repopulate its empty NVMe.
  std::lock_guard<std::mutex> lock(generation_mu_);
  replica_generations_.clear();
}

HvacServer::Stats HvacServer::stats_snapshot() const {
  // Bounded double-read: loading a dozen independently updated counters
  // one by one can yield a torn snapshot (hits + misses != reads).  Retry
  // while two consecutive assemblies disagree; under sustained churn the
  // last read wins, which is no worse than the old single pass.
  const auto load_all = [this] {
    Stats s;
    s.reads = stats_.reads.load(std::memory_order_relaxed);
    s.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
    s.cache_misses = stats_.cache_misses.load(std::memory_order_relaxed);
    s.pfs_fetches = stats_.pfs_fetches.load(std::memory_order_relaxed);
    s.recache_enqueued =
        stats_.recache_enqueued.load(std::memory_order_relaxed);
    s.recache_completed =
        stats_.recache_completed.load(std::memory_order_relaxed);
    s.replicas_stored = stats_.replicas_stored.load(std::memory_order_relaxed);
    s.warm_replicas_stored =
        stats_.warm_replicas_stored.load(std::memory_order_relaxed);
    s.stale_replica_puts =
        stats_.stale_replica_puts.load(std::memory_order_relaxed);
    s.warm_replica_bytes =
        stats_.warm_replica_bytes.load(std::memory_order_relaxed);
    s.payload_bytes_copied =
        stats_.payload_bytes_copied.load(std::memory_order_relaxed);
    s.evictions = cache_->eviction_count();
    s.used_bytes = cache_->used_bytes();
    s.expired_on_arrival =
        stats_.expired_on_arrival.load(std::memory_order_relaxed);
    s.peer_gets = stats_.peer_gets.load(std::memory_order_relaxed);
    s.peer_get_hits = stats_.peer_get_hits.load(std::memory_order_relaxed);
    s.peer_get_bytes = stats_.peer_get_bytes.load(std::memory_order_relaxed);
    s.fenced_writes = stats_.fenced_writes.load(std::memory_order_relaxed);
    s.stale_epoch_puts_accepted =
        stats_.stale_epoch_puts_accepted.load(std::memory_order_relaxed);
    if (pfs_guard_) {
      const PfsFetchGuard::Stats guard = pfs_guard_->stats_snapshot();
      s.pfs_coalesced = guard.coalesced;
      s.pfs_breaker_open = guard.breaker_rejections;
    }
    return s;
  };
  Stats snap = load_all();
  for (int round = 0; round < 3; ++round) {
    const Stats again = load_all();
    if (std::memcmp(&snap, &again, sizeof(Stats)) == 0) break;
    snap = again;
  }
  return snap;
}

bool HvacServer::has_cached(const std::string& path) const {
  return cache_->contains(path);
}

std::size_t HvacServer::cached_file_count() const {
  return cache_->file_count();
}

std::uint64_t HvacServer::cached_bytes() const { return cache_->used_bytes(); }

std::uint64_t HvacServer::cache_capacity_bytes() const {
  return cache_->capacity_bytes();
}

std::uint64_t HvacServer::replica_generation_of(const std::string& path) const {
  std::lock_guard<std::mutex> lock(generation_mu_);
  const auto it = replica_generations_.find(path);
  return it == replica_generations_.end() ? 0 : it->second;
}

std::size_t HvacServer::warm_restore(
    const ftc::store::TieredCacheStore::GenerationAuthority& authority) {
  if (tiered_ == nullptr) return 0;
  const std::size_t restored = tiered_->restore_from_device(authority);
  // Seed the freshness ledger from the surviving manifest: without this,
  // a stale replica push arriving right after the restart would be
  // accepted over the fresher bytes that just came back from the device.
  const ftc::store::Manifest manifest = tiered_->device().manifest();
  std::lock_guard<std::mutex> lock(generation_mu_);
  for (const auto& entry : manifest.entries) {
    if (entry.generation == 0) continue;
    auto& known = replica_generations_[entry.path];
    if (entry.generation > known) known = entry.generation;
  }
  return restored;
}

void HvacServer::flush_cache_to_cold() {
  flush_data_mover();
  if (tiered_ != nullptr) tiered_->flush_hot_to_cold();
}

}  // namespace ftc::cluster
