#include "cluster/hvac_server.hpp"

#include <utility>

#include "common/logging.hpp"
#include "hash/crc32.hpp"

namespace ftc::cluster {

HvacServer::HvacServer(NodeId id, PfsStore& pfs,
                       const HvacServerConfig& config)
    : id_(id), pfs_(pfs), config_(config),
      cache_(config.cache_capacity_bytes, config.eviction_policy) {
  if (config_.async_data_mover) {
    mover_ = std::thread([this] { mover_loop(); });
  }
}

HvacServer::~HvacServer() {
  if (mover_.joinable()) {
    {
      std::lock_guard lock(mover_mutex_);
      mover_stop_ = true;
    }
    mover_cv_.notify_all();
    mover_.join();
  }
}

rpc::RpcResponse HvacServer::handle(const rpc::RpcRequest& request) {
  switch (request.op) {
    case rpc::Op::kReadFile:
      return handle_read(request);
    case rpc::Op::kPing: {
      rpc::RpcResponse response;
      response.code = StatusCode::kOk;
      return response;
    }
    case rpc::Op::kEvict: {
      rpc::RpcResponse response;
      std::lock_guard lock(mutex_);
      response.code = cache_.erase(request.path) ? StatusCode::kOk
                                                 : StatusCode::kNotFound;
      return response;
    }
    case rpc::Op::kStats: {
      rpc::RpcResponse response;
      const Stats s = stats();
      response.payload = "reads=" + std::to_string(s.reads) +
                         " hits=" + std::to_string(s.cache_hits) +
                         " misses=" + std::to_string(s.cache_misses);
      return response;
    }
    case rpc::Op::kPut: {
      // Backup-replica placement (replication extension): store without
      // touching the PFS.
      rpc::RpcResponse response;
      std::lock_guard lock(mutex_);
      const Status put = cache_.put(request.path, request.payload,
                                    request.payload.size());
      response.code = put.code();
      if (put.is_ok()) ++stats_.replicas_stored;
      return response;
    }
  }
  rpc::RpcResponse response;
  response.code = StatusCode::kInvalidArgument;
  return response;
}

rpc::RpcResponse HvacServer::handle_read(const rpc::RpcRequest& request) {
  rpc::RpcResponse response;
  {
    std::lock_guard lock(mutex_);
    ++stats_.reads;
    auto cached = cache_.get(request.path);
    if (cached.is_ok()) {
      ++stats_.cache_hits;
      response.code = StatusCode::kOk;
      response.cache_hit = true;
      response.payload = std::move(cached).value();
      response.checksum = hash::crc32(response.payload);
      return response;
    }
    ++stats_.cache_misses;
  }

  // Miss: fetch from PFS outside the cache lock (PFS reads are slow).
  auto from_pfs = pfs_.read(request.path);
  if (!from_pfs.is_ok()) {
    response.code = from_pfs.status().code();
    return response;
  }
  std::string contents = std::move(from_pfs).value();
  response.code = StatusCode::kOk;
  response.cache_hit = false;
  response.checksum = hash::crc32(contents);

  if (config_.async_data_mover) {
    {
      std::lock_guard lock(mover_mutex_);
      mover_queue_.emplace_back(request.path, contents);
    }
    mover_cv_.notify_one();
    std::lock_guard lock(mutex_);
    ++stats_.recache_enqueued;
  } else {
    std::lock_guard lock(mutex_);
    ++stats_.recache_enqueued;
    const Status put = cache_.put(request.path, contents, contents.size());
    if (put.is_ok()) {
      ++stats_.recache_completed;
    } else {
      FTC_LOG(kWarn, "hvac_server")
          << "node " << id_ << " recache failed: " << put.to_string();
    }
  }
  response.payload = std::move(contents);
  return response;
}

void HvacServer::mover_loop() {
  for (;;) {
    std::pair<std::string, std::string> item;
    {
      std::unique_lock lock(mover_mutex_);
      mover_cv_.wait(lock,
                     [this] { return mover_stop_ || !mover_queue_.empty(); });
      if (mover_queue_.empty()) {
        if (mover_stop_) return;
        continue;
      }
      item = std::move(mover_queue_.front());
      mover_queue_.pop_front();
      mover_busy_ = true;
    }
    {
      std::lock_guard lock(mutex_);
      const std::uint64_t size = item.second.size();
      if (cache_.put(item.first, std::move(item.second), size).is_ok()) {
        ++stats_.recache_completed;
      }
    }
    {
      std::lock_guard lock(mover_mutex_);
      mover_busy_ = false;
    }
    mover_cv_.notify_all();  // wake flush waiters
  }
}

void HvacServer::flush_data_mover() {
  if (!config_.async_data_mover) return;
  std::unique_lock lock(mover_mutex_);
  mover_cv_.wait(lock,
                 [this] { return mover_queue_.empty() && !mover_busy_; });
}

HvacServer::Stats HvacServer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

bool HvacServer::has_cached(const std::string& path) const {
  std::lock_guard lock(mutex_);
  return cache_.contains(path);
}

std::size_t HvacServer::cached_file_count() const {
  std::lock_guard lock(mutex_);
  return cache_.file_count();
}

std::uint64_t HvacServer::cached_bytes() const {
  std::lock_guard lock(mutex_);
  return cache_.used_bytes();
}

}  // namespace ftc::cluster
