#include "cluster/pfs_store.hpp"

#include <mutex>
#include <thread>

#include "common/rng.hpp"
#include "common/string_util.hpp"

namespace ftc::cluster {

PfsStore::PfsStore(std::chrono::microseconds read_latency)
    : read_latency_(read_latency) {}

void PfsStore::put(const std::string& path, common::Buffer contents) {
  std::unique_lock lock(mutex_);
  files_[path] = std::move(contents);
}

void PfsStore::set_service_concurrency(std::uint32_t slots) {
  {
    std::lock_guard lock(service_mutex_);
    service_slots_ = slots;
  }
  service_cv_.notify_all();
}

std::uint32_t PfsStore::service_concurrency() const {
  std::lock_guard lock(service_mutex_);
  return service_slots_;
}

StatusOr<common::Buffer> PfsStore::read(const std::string& path) const {
  if (read_latency_.count() > 0) {
    std::unique_lock lock(service_mutex_);
    if (service_slots_ > 0) {
      // Finite service bandwidth: wait for a slot, then pay one service
      // time.  Concurrent excess demand queues here, which is exactly how
      // a failover storm's duplicate fetches turn into stretched latency
      // on a real parallel filesystem.
      service_cv_.wait(lock, [this] {
        return service_slots_ == 0 || service_in_use_ < service_slots_;
      });
      ++service_in_use_;
      lock.unlock();
      std::this_thread::sleep_for(read_latency_);
      lock.lock();
      if (service_in_use_ > 0) --service_in_use_;
      lock.unlock();
      service_cv_.notify_one();
    } else {
      lock.unlock();
      std::this_thread::sleep_for(read_latency_);
    }
  }
  std::shared_lock lock(mutex_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::not_found("PFS has no file " + path);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard count_lock(per_path_mutex_);
    ++per_path_reads_[path];
  }
  return it->second;
}

std::uint64_t PfsStore::read_count(const std::string& path) const {
  std::lock_guard lock(per_path_mutex_);
  const auto it = per_path_reads_.find(path);
  return it == per_path_reads_.end() ? 0 : it->second;
}

bool PfsStore::contains(const std::string& path) const {
  std::shared_lock lock(mutex_);
  return files_.contains(path);
}

std::size_t PfsStore::file_count() const {
  std::shared_lock lock(mutex_);
  return files_.size();
}

void PfsStore::populate_synthetic(const std::string& prefix,
                                  std::uint32_t count, std::uint32_t bytes) {
  for (std::uint32_t i = 0; i < count; ++i) {
    Rng rng(0xDA7A0000ULL + i);
    std::string contents;
    contents.reserve(bytes);
    for (std::uint32_t b = 0; b < bytes; ++b) {
      contents.push_back(static_cast<char>('a' + rng.below(26)));
    }
    put(prefix + "/file_" + zero_pad(i, 7) + ".tfrecord",
        std::move(contents));
  }
}

}  // namespace ftc::cluster
