// hvac_client.hpp - The HVAC client library (intercept-side logic).
//
// In the original system this is the LD_PRELOAD shared library that
// intercepts open/read/close; here `read_file` is the moral equivalent of
// that intercepted path.  The client owns the three fault-tolerance
// behaviours the paper compares:
//
//   kNone (NoFT)             - no detection; a timeout aborts the read and
//                              therefore the training job (baseline HVAC).
//   kPfsRedirect (FT w/ PFS) - Sec IV-A: timeouts increment a per-node
//                              counter; the timed-out request (and, once
//                              the node is flagged, all of its keys'
//                              requests) are served from the PFS forever.
//   kHashRingRecache         - Sec IV-B: placement is a consistent-hash
//   (FT w/ NVMe)               ring; flagging a node removes it from the
//                              ring so its keys fall to the clockwise
//                              successor, which recaches them from the PFS
//                              once and serves NVMe thereafter.
//
// Each client instance is used by one training process (thread) at a time,
// but different clients share nothing — they detect failures and update
// their rings autonomously, as in the paper (no inter-node coordination).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/fault_detector.hpp"
#include "cluster/pfs_store.hpp"
#include "common/buffer.hpp"
#include "common/latency_recorder.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "ring/placement.hpp"
#include "rpc/transport.hpp"

namespace ftc::cluster {

enum class FtMode {
  kNone,
  kPfsRedirect,
  kHashRingRecache,
};

const char* ft_mode_name(FtMode mode);

struct HvacClientConfig {
  FtMode mode = FtMode::kHashRingRecache;
  /// Per-RPC deadline (the artifact's TIMEOUT_SECONDS, scaled down for an
  /// in-process transport).
  std::chrono::milliseconds rpc_timeout{100};
  /// Timeouts needed to flag a node (the artifact's TIMEOUT_LIMIT).
  std::uint32_t timeout_limit = 3;
  /// Virtual nodes per physical node for the ring modes (paper: 100).
  std::uint32_t vnodes_per_node = 100;
  /// All clients of a job must share this seed to build identical rings.
  std::uint64_t ring_seed = 0;
  /// Verify payload CRC against the server-computed checksum.
  bool verify_checksums = true;
  /// Replication extension (hash-ring mode only): cache every file on the
  /// first `replication_factor` distinct ring owners.  On a failure the
  /// clockwise successor already holds the lost files, so recovery needs
  /// NO PFS access at all — at replication_factor x the NVMe footprint.
  /// 1 = the paper's system (no replication).
  std::uint32_t replication_factor = 1;
};

class HvacClient {
 public:
  /// `servers` = the job's initial allocation (clients and servers are
  /// co-located; `self` identifies this client's node for telemetry).
  HvacClient(NodeId self, rpc::Transport& transport, PfsStore& pfs,
             const std::vector<NodeId>& servers,
             const HvacClientConfig& config);

  /// The intercepted read: returns file contents or an error.  With
  /// FtMode::kNone a server timeout is fatal (returned to caller); the FT
  /// modes mask it per their strategy.  The returned Buffer references
  /// the server's cached bytes (zero-copy end to end in-process).
  StatusOr<common::Buffer> read_file(const std::string& path);

  /// Owner the client would contact for `path` right now.
  [[nodiscard]] ring::NodeId current_owner(const std::string& path) const;

  /// Elastic scale-up: a new cache server joined the job.  In ring mode
  /// only ~1/(N+1) of keys move to it (each recached on first touch); in
  /// the static modes this is a full re-modulo — the movement asymmetry
  /// the paper's Sec IV-B argues from.
  void add_server(NodeId node);

  /// Observed end-to-end latencies (microseconds) of successful cache
  /// reads — the measurement behind the TTL guidance of Sec IV-A.
  [[nodiscard]] const LatencyRecorder& latency() const { return latency_; }

  /// TTL the paper's rule would pick right now: max observed latency x
  /// `margin`, or the configured rpc_timeout until enough samples exist.
  [[nodiscard]] std::chrono::milliseconds recommended_timeout(
      double margin = 2.0) const;

  /// Liveness probe (diagnostics only — the FT designs never rely on
  /// pings; detection is timeout-on-request).  Feeds the detector and the
  /// latency window like a data request.
  Status ping(NodeId node);

  [[nodiscard]] bool node_failed(NodeId node) const {
    return detector_.is_failed(node);
  }
  [[nodiscard]] const FaultDetector& detector() const { return detector_; }
  [[nodiscard]] const HvacClientConfig& config() const { return config_; }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t served_remote_cache = 0;  ///< server had it on NVMe
    std::uint64_t served_remote_fetch = 0;  ///< server fetched from PFS
    std::uint64_t served_pfs_direct = 0;    ///< client read the PFS itself
    std::uint64_t timeouts = 0;
    std::uint64_t nodes_flagged = 0;
    std::uint64_t ring_updates = 0;
    std::uint64_t checksum_failures = 0;
    std::uint64_t replicas_pushed = 0;  ///< backup kPut ops issued
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  StatusOr<common::Buffer> read_from_pfs(const std::string& path);
  /// Handles a timeout against `owner`: detection bookkeeping plus ring
  /// surgery for the recaching mode.
  void on_timeout(NodeId owner);
  /// Pushes backup copies of `path` to the replica chain beyond the
  /// primary (replication extension; no-op when replication_factor <= 1).
  /// Every backup request shares `contents` by refcount.
  void replicate(const std::string& path, const common::Buffer& contents,
                 NodeId primary);

  NodeId self_;
  rpc::Transport& transport_;
  PfsStore& pfs_;
  HvacClientConfig config_;
  /// kHashRingRecache uses the ring; the other modes use the original
  /// static modulo placement, matching the systems compared in Sec V.
  std::unique_ptr<ring::PlacementStrategy> placement_;
  /// Non-owning view of placement_ when it is a ring (replication needs
  /// owner chains); nullptr otherwise.
  ring::ConsistentHashRing* ring_view_ = nullptr;
  FaultDetector detector_;
  Stats stats_;
  LatencyRecorder latency_;
};

}  // namespace ftc::cluster
