// hvac_client.hpp - The HVAC client library (intercept-side logic).
//
// In the original system this is the LD_PRELOAD shared library that
// intercepts open/read/close; here `read_file` is the moral equivalent of
// that intercepted path.  The client owns the three fault-tolerance
// behaviours the paper compares:
//
//   kNone (NoFT)             - no detection; a timeout aborts the read and
//                              therefore the training job (baseline HVAC).
//   kPfsRedirect (FT w/ PFS) - Sec IV-A: timeouts increment a per-node
//                              counter; the timed-out request (and, once
//                              the node is flagged, all of its keys'
//                              requests) are served from the PFS forever.
//   kHashRingRecache         - Sec IV-B: placement is a consistent-hash
//   (FT w/ NVMe)               ring; flagging a node removes it from the
//                              ring so its keys fall to the clockwise
//                              successor, which recaches them from the PFS
//                              once and serves NVMe thereafter.
//
// Beyond the paper's crash-stop model, the hash-ring mode handles *gray*
// failures (slow or flapping nodes, Sec III's transient fault classes):
//
//   - Probation/reinstatement: tripping TIMEOUT_LIMIT puts a node in
//     probation (out of the ring) instead of declaring it dead.  The
//     client probes it on an exponential backoff; a successful probe
//     re-adds it through the same elastic path a newly joined server
//     uses, so its keys migrate back and recache on first touch.  A node
//     that flaps repeatedly is failed for good (FaultDetector::Options).
//   - Hedged reads (opt-in, `hedge_reads`): if the owner has not answered
//     within an adaptive hedge delay (a high quantile of observed healthy
//     latency x a margin), the client races a second request against the
//     next distinct ring successor (or the PFS when no successor exists)
//     and returns the first success — bounding tail latency under a slow
//     node that never trips the timeout.
//
// Each client instance is used by one training process (thread) at a
// time, but different clients share nothing — they detect failures and
// update their rings autonomously, as in the paper (no inter-node
// coordination).  Hedge and probe RPCs complete on transport pool
// threads; their outcomes are posted to a refcounted mailbox and folded
// into the detector by the owning thread on its next call, so all client
// state stays single-threaded.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/fault_detector.hpp"
#include "cluster/pfs_store.hpp"
#include "cluster/popularity.hpp"
#include "cluster/retry_budget.hpp"
#include "common/buffer.hpp"
#include "common/latency_recorder.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_context.hpp"
#include "placement/replication_policy.hpp"
#include "prefetch/epoch_prefetch_planner.hpp"
#include "prefetch/prefetch_config.hpp"
#include "ring/bounded_load.hpp"
#include "ring/consistent_hash_ring.hpp"
#include "ring/placement.hpp"
#include "rpc/transport.hpp"

namespace ftc::membership {
class MembershipAgent;
}  // namespace ftc::membership

namespace ftc::cluster {

enum class FtMode {
  kNone,
  kPfsRedirect,
  kHashRingRecache,
};

const char* ft_mode_name(FtMode mode);

struct HvacClientConfig {
  FtMode mode = FtMode::kHashRingRecache;
  /// Per-RPC deadline (the artifact's TIMEOUT_SECONDS, scaled down for an
  /// in-process transport).  Valid: > 0.
  std::chrono::milliseconds rpc_timeout{100};
  /// Timeouts needed to take a node out of service (the artifact's
  /// TIMEOUT_LIMIT).  Valid: >= 1.
  std::uint32_t timeout_limit = 3;
  /// Virtual nodes per physical node for the ring modes (paper: 100).
  /// Valid: >= 1.
  std::uint32_t vnodes_per_node = 100;
  /// All clients of a job must share this seed to build identical rings.
  /// Valid: any.
  std::uint64_t ring_seed = 0;
  /// Verify payload CRC against the server-computed checksum.
  bool verify_checksums = true;
  /// Replication extension (hash-ring mode only): cache every file on the
  /// first `replication.factor` distinct ring owners.  On a failure the
  /// clockwise successor already holds the lost files, so recovery needs
  /// NO PFS access at all — at factor x the NVMe footprint.  factor == 1
  /// is the paper's system (no replication).  With `replication.
  /// warm_standby` the backups are placed proactively on every
  /// authoritative fill (write-behind, generation-stamped) instead of
  /// only on miss fills — the warm-failover mode.  Replaces the old flat
  /// `replication_factor` knob (now `replication.factor`); see
  /// placement::ReplicationConfig for the full set and validity ranges.
  placement::ReplicationConfig replication;
  /// Shuffle-aware epoch-ahead prefetch (hash-ring mode only; everything
  /// default-off).  With `prefetch.enabled` the trainer hands the client
  /// its next sample set at each epoch boundary (prefetch_epoch) and an
  /// EpochPrefetchPlanner pulls the remote-owned files node-to-node over
  /// kPeerGet, at most `prefetch.depth` in flight, staging them locally so
  /// the epoch's reads are served without a network round trip.  With
  /// `prefetch.p2p` a read that would otherwise fall back to the PFS first
  /// walks the replica chain over kPeerGet (ring owner, then warm
  /// standbys) and the rescued bytes heal the authoritative owner through
  /// the same merged replica-push path.  See prefetch::PrefetchConfig.
  prefetch::PrefetchConfig prefetch;

  // --- gray-failure handling (hash-ring mode only) ---------------------
  /// When true, a flagged node enters probation and may be reinstated by
  /// a background probe; when false, flagging is terminal (the paper's
  /// crash-stop model).
  bool reinstatement = true;
  /// Delay before the first reinstatement probe; doubles per failed
  /// probe up to `probe_backoff_cap`.  Valid: > 0, cap >= base.
  std::chrono::milliseconds probe_backoff{50};
  std::chrono::milliseconds probe_backoff_cap{2000};
  /// Reinstatement cycles before a flapping node is failed for good.
  /// Valid: any (0 = first re-flag is terminal).
  std::uint32_t max_flaps = 3;

  // --- hedged reads (hash-ring mode only; off by default so the paper's
  // --- single-request read path stays the baseline) --------------------
  bool hedge_reads = false;
  /// Hedge delay = clamp(latency quantile x multiplier, min_delay,
  /// rpc_timeout), falling back to rpc_timeout / 4 until
  /// `hedge_min_samples` latencies are recorded.
  /// Valid: quantile in (0, 100], multiplier >= 1.0, min_samples >= 1.
  double hedge_quantile = 95.0;
  double hedge_delay_multiplier = 2.0;
  std::chrono::microseconds hedge_min_delay{0};
  std::uint32_t hedge_min_samples = 16;

  // --- failover-storm hardening (every knob defaults to the legacy
  // --- behaviour: no deadline on the wire, unlimited retries/hedges,
  // --- no busy handling beyond surfacing the error) --------------------
  /// Total budget for one read_file call, spanning every retry and hedge
  /// leg.  Carried on the wire as an absolute deadline so servers shed
  /// work the client has already given up on.  0 = off (legacy: each
  /// attempt gets a fresh rpc_timeout, reads can take attempts x timeout).
  /// Valid when set: > rpc_timeout, else the first attempt could never
  /// use its full per-RPC deadline.
  std::chrono::milliseconds total_deadline{0};
  /// Retry budget (gRPC/Finagle style): every success deposits this many
  /// tokens (capped at retry_budget_cap); every retry and every hedge leg
  /// spends one.  Under overload successes dry up, the bucket drains, and
  /// retries/hedging self-disable instead of amplifying the storm.
  /// 0 = off.  Valid when set: in (0, 1]; cap >= 1.
  double retry_budget_ratio = 0.0;
  double retry_budget_cap = 10.0;
  /// Backoff after a kBusy rejection: jittered exponential from `base`
  /// doubling per attempt up to `cap`, never below the server's
  /// retry-after hint, never past the read's deadline.
  /// Valid: base > 0, cap >= base.
  std::chrono::milliseconds busy_backoff_base{1};
  std::chrono::milliseconds busy_backoff_cap{16};

  // --- skew-tolerant placement (hash-ring mode only; every knob defaults
  // --- to the legacy single-owner lookup, bit-for-bit) -----------------
  /// Bounded-load lookup (consistent hashing with bounded loads): a read
  /// spills past its primary owner to the next distinct clockwise node
  /// when the primary's piggybacked load estimate exceeds
  /// `bounded_load_c` x the mean over observed nodes.  Requires servers
  /// with report_load on to have any effect (no hints -> no spills).
  bool bounded_load = false;
  /// Overload factor c.  Valid: > 1 (c <= 1 would mark half the fleet
  /// overloaded in steady state and thrash placement).
  double bounded_load_c = 1.25;
  /// Distinct spill candidates past the primary a lookup may inspect.
  /// Valid: >= 1 and <= 7 (the lookup's fixed candidate window).
  std::uint32_t bounded_load_max_spill = 2;
  /// EWMA smoothing for piggybacked load hints.  Valid: in (0, 1].
  double load_ewma_alpha = 0.3;

  /// Hot-file replica fanout: a space-saving top-k sketch tracks per-file
  /// heat; files crossing hot_promote_threshold are replicated to the
  /// first `hot_replica_fanout` ring owners (existing kPut recache path)
  /// and reads load-spread across the set by power-of-two-choices on the
  /// piggybacked load.  Demoted (replicas evicted) when heat decays to
  /// hot_demote_threshold, invalidated wholesale when the ring changes.
  bool hot_fanout = false;
  /// Sketch capacity (the k of top-k).  Valid: >= 1.
  std::uint32_t hot_top_k = 64;
  /// Replica-set size including the primary.  Valid: >= 2 and <= cluster
  /// size at construction.
  std::uint32_t hot_replica_fanout = 2;
  /// Promote at heat >= this.  Valid: > 0.
  double hot_promote_threshold = 64.0;
  /// Demote at heat <= this.  Valid: >= 0 and < hot_promote_threshold —
  /// the gap is the hysteresis band that stops flapping.
  double hot_demote_threshold = 16.0;
  /// Accesses between heat halvings.  Valid: >= 1.
  std::uint32_t hot_decay_interval = 4096;

  /// Checks every field against its documented range; `cluster_size` (0 =
  /// unknown) additionally bounds replication.factor.  The HvacClient
  /// constructor rejects configs this returns non-OK for.
  [[nodiscard]] Status validate(std::size_t cluster_size = 0) const;
};

class HvacClient {
 public:
  /// `servers` = the job's initial allocation (clients and servers are
  /// co-located; `self` identifies this client's node for telemetry).
  /// Throws std::invalid_argument when `config.validate(servers.size())`
  /// fails — a client with a zero timeout or an impossible replication
  /// factor must not exist at all rather than silently misbehave.
  HvacClient(NodeId self, rpc::Transport& transport, PfsStore& pfs,
             const std::vector<NodeId>& servers,
             const HvacClientConfig& config);

  /// Attaches this node's membership agent (not owned; must outlive the
  /// client).  Hash-ring mode only.  Once attached:
  ///   - placement comes from the agent's epoch-versioned RingView (the
  ///     local detector no longer performs private ring surgery);
  ///   - a flagged node is reported as a SWIM *suspicion* instead of
  ///     being unilaterally removed — the cluster confirms or refutes;
  ///   - every outgoing request carries the client's ring epoch plus
  ///     piggybacked gossip, and responses are ingested (including the
  ///     kStaleView one-round-trip fast-forward);
  ///   - a cluster-wide kReinstate event clears the local detector's
  ///     history for that node.
  /// Never attached in legacy mode, leaving behaviour bit-identical.
  void attach_membership(membership::MembershipAgent* agent);

  /// Attaches this node's flight recorder (not owned; must outlive every
  /// async completion this client launches).  Every `sample_every`-th
  /// read_file call is traced end to end: a kClientRead root span plus
  /// child spans per attempt / hedge leg / busy retry / PFS fallback, and
  /// the context rides outgoing requests so servers extend the tree.
  /// `sample_every` == 0 attaches the recorder but samples no reads
  /// (events like suspicions are still recorded).  Never attached by
  /// default: the untraced hot path pays one null check per read.
  void attach_observability(obs::FlightRecorder* recorder,
                            std::uint32_t sample_every);

  /// The intercepted read: returns file contents or an error.  With
  /// FtMode::kNone a server timeout is fatal (returned to caller); the FT
  /// modes mask it per their strategy.  The returned Buffer references
  /// the server's cached bytes (zero-copy end to end in-process).
  StatusOr<common::Buffer> read_file(const std::string& path);

  /// Owner the client would contact for `path` right now.
  [[nodiscard]] NodeId current_owner(const std::string& path) const;

  /// Elastic scale-up: a new cache server joined the job.  In ring mode
  /// only ~1/(N+1) of keys move to it (each recached on first touch); in
  /// the static modes this is a full re-modulo — the movement asymmetry
  /// the paper's Sec IV-B argues from.  Reinstatement rides this same
  /// path: a probed-healthy probation node is re-added here.
  void add_server(NodeId node);

  /// Observed end-to-end latencies (microseconds) of successful
  /// non-hedged cache reads — the measurement behind the TTL guidance of
  /// Sec IV-A and the hedge-delay quantile.  Reads that hedged are
  /// excluded so the hedge policy cannot feed back into its own trigger.
  [[nodiscard]] const LatencyRecorder& latency() const { return latency_; }

  /// Epoch-boundary prefetch entry point (no-op unless prefetch.enabled):
  /// diffs `upcoming` — this node's next sample set, in read order —
  /// against ring placement and what is already staged, then starts
  /// bounded-depth background kPeerGet pulls for the remote-owned rest.
  /// Pending pulls from the previous epoch are dropped (counted
  /// prefetch_deferred); in-flight ones complete normally.  The pipeline
  /// advances as the owning thread drains completions on every read.
  void prefetch_epoch(const std::vector<std::string>& upcoming);

  /// Blocks until no prefetch pull is pending or in flight (bench/test
  /// synchronization; the training path never needs it).
  void drain_prefetch();

  /// True while `path` sits in the local prefetch staging area (telemetry
  /// and tests; the read path consumes staged entries automatically).
  [[nodiscard]] bool has_prefetched(const std::string& path) const {
    return staged_prefetch_.find(path) != staged_prefetch_.end();
  }

  /// TTL the paper's rule would pick right now: max observed latency x
  /// `margin`, or the configured rpc_timeout until enough samples exist.
  [[nodiscard]] std::chrono::milliseconds recommended_timeout(
      double margin = 2.0) const;

  /// Hedge delay the adaptive policy would use right now.
  [[nodiscard]] std::chrono::microseconds current_hedge_delay() const;

  /// Liveness probe (diagnostics only — the FT designs never rely on
  /// pings; detection is timeout-on-request).  Feeds the detector and the
  /// latency window like a data request.
  Status ping(NodeId node);

  /// True when the client routes no data traffic to `node` (probation or
  /// terminal failure).
  [[nodiscard]] bool node_failed(NodeId node) const {
    return detector_.is_out_of_service(node);
  }
  [[nodiscard]] NodeHealth node_health(NodeId node) const {
    return detector_.health(node);
  }
  [[nodiscard]] const FaultDetector& detector() const { return detector_; }
  [[nodiscard]] const HvacClientConfig& config() const { return config_; }

  /// True while `path` is promoted to a hot replica set (always false
  /// with hot_fanout off).  Telemetry/tests only — the read path makes
  /// this decision internally.
  [[nodiscard]] bool file_is_hot(const std::string& path) const {
    return hot_files_ != nullptr && hot_files_->is_promoted(path);
  }

  /// The client's current smoothed view of per-node load, as learned
  /// from piggybacked hints (read-only; diagnostics and benches).
  [[nodiscard]] const ring::NodeLoadEstimator& load_estimator() const {
    return load_estimator_;
  }

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t served_remote_cache = 0;  ///< server had it on NVMe
    std::uint64_t served_remote_fetch = 0;  ///< server fetched from PFS
    std::uint64_t served_pfs_direct = 0;    ///< client read the PFS itself
    std::uint64_t timeouts = 0;
    std::uint64_t nodes_flagged = 0;   ///< healthy/suspect -> out of service
    std::uint64_t ring_updates = 0;
    std::uint64_t checksum_failures = 0;
    std::uint64_t replicas_pushed = 0;  ///< backup kPut ops issued
    // Gray-failure path:
    std::uint64_t hedges_launched = 0;  ///< second requests raced
    std::uint64_t hedge_wins = 0;       ///< hedge answered first
    std::uint64_t primary_wins_after_hedge = 0;  ///< hedge raced, lost
    std::uint64_t hedges_to_pfs = 0;    ///< no successor; hedged to PFS
    std::uint64_t probes_sent = 0;      ///< reinstatement probes launched
    std::uint64_t nodes_reinstated = 0; ///< probation -> healthy, re-added
    // Membership path (zero while no agent is attached):
    std::uint64_t suspicions_reported = 0;  ///< detector verdicts gossiped
    std::uint64_t stale_view_hints = 0;     ///< kStaleView responses seen
    std::uint64_t epoch_fast_forwards = 0;  ///< ingests that advanced epoch
    // Failover-storm hardening (zero with the knobs off):
    std::uint64_t busy_rejections = 0;  ///< kBusy answers (shed/breaker)
    std::uint64_t retries_denied_by_budget = 0;  ///< spends refused
    std::uint64_t deadline_give_ups = 0;  ///< reads ended by total_deadline
    // Skew-tolerant placement (zero with the knobs off):
    std::uint64_t load_hints_observed = 0;  ///< responses carrying load
    std::uint64_t spilled_reads = 0;     ///< bounded-load routed past primary
    std::uint64_t load_spread_reads = 0;  ///< p2c over a hot replica set
    std::uint64_t hot_promotions = 0;     ///< files entering a replica set
    std::uint64_t hot_demotions = 0;      ///< promotions dropped (heat decay)
    std::uint64_t hot_invalidations = 0;  ///< promotions dropped (ring epoch)
    // Warm failover (zero with replication.warm_standby off).  Successful
    // warm puts also count toward replicas_pushed — that field stays the
    // one total over every backup kPut, exactly as before.
    std::uint64_t warm_pushes = 0;        ///< standby puts acknowledged
    std::uint64_t warm_restores = 0;      ///< of which: generation repairs
    std::uint64_t warm_deferred = 0;      ///< pushes skipped at depth cap
    std::uint64_t warm_invalidations = 0;  ///< standby sets moved by a
                                           ///< ring change (repair issued)
    // Epoch-ahead prefetch / p2p recache (zero with prefetch.* off):
    std::uint64_t prefetch_planned = 0;  ///< pulls the planner selected
    std::uint64_t prefetch_pulls = 0;    ///< kPeerGet pulls issued
    std::uint64_t prefetch_hits = 0;     ///< pulls that staged a payload
    std::uint64_t prefetch_misses = 0;   ///< pulls answered kNotFound
    std::uint64_t prefetch_deferred = 0;  ///< pulls dropped (stale epoch /
                                          ///< admission shed)
    std::uint64_t prefetch_local_hits = 0;  ///< reads served from staging
    std::uint64_t p2p_rescues = 0;  ///< PFS fallbacks averted via kPeerGet
    std::uint64_t p2p_bytes = 0;    ///< bytes received over kPeerGet
    // Partition tolerance (zero with fencing off / no partitions):
    std::uint64_t fenced_puts = 0;  ///< kPut/kEvict refused kFencedEpoch;
                                    ///< the attached delta fast-forwarded
                                    ///< us before the retry
    std::uint64_t reconcile_repushes = 0;  ///< post-heal standby re-pushes
                                           ///< for files whose replica
                                           ///< chain crossed the heal delta
  };
  /// Value snapshot of the counters.  There is deliberately no reference
  /// accessor: callers can neither mutate the client's counters nor
  /// observe a torn mid-update state.  Counters are per-field relaxed
  /// atomics (metrics collectors and benches read them while the owning
  /// thread serves reads); the snapshot double-reads until two passes
  /// agree, so the multi-field view is consistent too.
  [[nodiscard]] Stats stats_snapshot() const;

 private:
  /// Mailbox for RPC outcomes that complete on transport pool threads
  /// (hedge legs, probes).  Owned via shared_ptr so completions arriving
  /// after the client (or the read that launched them) is gone write into
  /// refcounted memory, not a dangling `this`.  The owning thread drains
  /// it at the top of every read/ping.
  struct Mailbox;

  /// read_file minus the root-span bookkeeping; `trace` is the sampled
  /// root context (unsampled default when the read is not traced).
  StatusOr<common::Buffer> read_file_impl(const std::string& path,
                                          const obs::TraceContext& trace);
  StatusOr<common::Buffer> read_from_pfs(const std::string& path,
                                         const obs::TraceContext& trace);
  /// Owner for `path` under the active placement source: the membership
  /// agent's epoch'd view (skipping detector-flagged and SWIM-suspect
  /// nodes per lookup) when attached, the private placement otherwise.
  [[nodiscard]] NodeId resolve_owner(const std::string& path) const;
  /// Nodes a data request must not target (local evidence + gossip).
  [[nodiscard]] bool excluded_for_data(NodeId node) const;
  /// Replica chain from the active placement source.
  [[nodiscard]] std::vector<NodeId> replica_chain(const std::string& path,
                                                  std::size_t count) const;
  /// Folds a response's gossip/epoch delta into the membership agent and
  /// reacts to the resulting ring events (detector resets on reinstate).
  void ingest_membership(const rpc::RpcResponse& response);
  /// Handles a timeout against `owner`: detection bookkeeping plus ring
  /// surgery for the recaching mode.
  void on_timeout(NodeId owner);
  /// Folds queued async outcomes into detector/placement/stats.
  void drain_mailbox();
  /// Launches async reinstatement probes for probation nodes past their
  /// backoff deadline.
  void maybe_probe();
  /// Reinstates a probed-healthy node into the placement.
  void reinstate(NodeId node);
  /// Hedged fast path for one attempt; returns nullopt when the caller
  /// should fall back to the ordinary retry loop for this attempt.
  /// `deadline` (kNoDeadline when total_deadline is off) is inherited by
  /// both legs on the wire and bounds their per-leg timeouts.
  std::optional<StatusOr<common::Buffer>> hedged_attempt(
      const std::string& path, NodeId owner, rpc::DeadlineNs deadline,
      const obs::TraceContext& trace);
  /// Per-attempt RPC timeout: rpc_timeout capped by the budget remaining
  /// before `deadline` (floor 1ms so an attempt is never zero-length).
  [[nodiscard]] std::chrono::milliseconds attempt_timeout(
      rpc::DeadlineNs deadline) const;
  /// Takes a retry-budget token for an extra attempt (retry or hedge
  /// leg); false = denied, with the denial counted.
  bool spend_retry_token();
  /// kBusy bookkeeping: the node is *alive* (liveness evidence for the
  /// detector, never a latency sample or a timeout), and its piggybacked
  /// membership still gets folded in.
  void handle_busy(NodeId server, const rpc::RpcResponse& response);
  /// Sleeps the jittered exponential busy backoff (>= the server's
  /// retry-after hint, truncated at the read's deadline).
  void busy_backoff(std::uint32_t retry_after_ms, std::size_t attempt,
                    rpc::DeadlineNs deadline);
  /// Winner bookkeeping shared by the plain and hedged paths.
  StatusOr<common::Buffer> accept_response(const std::string& path,
                                           NodeId server,
                                           rpc::RpcResponse response);
  /// The unified replica push (every policy in one pass): collects plans
  /// from the active ReplicationPolicies — miss-recache when `cache_fill`,
  /// the pending hot fanout, the warm standby — merges them into one
  /// deduplicated kPut per target node, and executes sync targets inline
  /// and async ones write-behind.  Every request shares `contents` by
  /// refcount.  No-op when no policy is active.  `extra` (peer-recache
  /// heal) is merged in when non-null, so a rescue's owner repair dedupes
  /// against any warm-standby or hot-fanout push for the same file.
  void push_replicas(const std::string& path, const common::Buffer& contents,
                     NodeId primary, bool cache_fill,
                     const placement::ReplicaPlan* extra = nullptr);
  /// Executes one merged target: a synchronous kPut with legacy
  /// detector/stats bookkeeping, or an async one whose verdict arrives
  /// through the mailbox.
  void execute_put(const placement::MergedTarget& target,
                   const std::string& path, const common::Buffer& contents,
                   bool warm_restore);
  /// Folds a response's piggybacked load hint into the estimator (no-op
  /// when neither skew knob is on, or the response carries no hint).
  void observe_load_hint(NodeId server, const rpc::RpcResponse& response);
  /// Read-target resolution with the skew knobs applied on top of
  /// resolve_owner: p2c over a hot replica set first, bounded-load spill
  /// second, plain owner otherwise.
  [[nodiscard]] NodeId pick_read_target(const std::string& path,
                                        const obs::TraceContext& trace);
  /// Per-read hot bookkeeping: epoch check, heat recording, promotion
  /// marking, decay-driven demotions.  No-op with hot_fanout off.
  void note_hot_access(const std::string& path);
  /// The placement generation the hot set was derived from: membership
  /// epoch when attached, the local ring-surgery counter otherwise.
  [[nodiscard]] std::uint64_t placement_generation() const;
  /// Drops every promotion and evicts its replicas when the placement
  /// generation moved (the replica sets described a ring that is gone).
  void maybe_invalidate_hot();
  /// Tears down one demoted/invalidated promotion: best-effort async
  /// kEvict to the (current) replica chain beyond the primary.
  void retire_hot_replicas(const std::string& path, bool epoch_bump);
  /// Starts queued prefetch pulls until prefetch.depth are in flight
  /// (owning thread only; completion handlers call it again via drain).
  void issue_prefetch_pulls();
  /// One async kPeerGet pull for `path` against replica-chain hop `hop`
  /// (0 = ring owner).  Returns false when no eligible target exists at
  /// that hop (the path is dropped, not an error).
  bool issue_prefetch_pull(const std::string& path, std::uint32_t hop);
  /// Last line of defense before read_from_pfs with prefetch.p2p on:
  /// walks the replica chain synchronously over kPeerGet and, on a hit,
  /// heals the authoritative owner through the merged replica-push path
  /// (PeerRecachePolicy).  kNotFound when no peer holds the bytes.
  StatusOr<common::Buffer> peer_rescue(const std::string& path,
                                       rpc::DeadlineNs deadline,
                                       const obs::TraceContext& trace);

  NodeId self_;
  rpc::Transport& transport_;
  PfsStore& pfs_;
  HvacClientConfig config_;
  /// kHashRingRecache uses the ring; the other modes use the original
  /// static modulo placement, matching the systems compared in Sec V.
  std::unique_ptr<ring::PlacementStrategy> placement_;
  /// Non-owning view of placement_ when it is a ring (replication and
  /// hedging need owner chains); nullptr otherwise.
  ring::ConsistentHashRing* ring_view_ = nullptr;
  membership::MembershipAgent* membership_ = nullptr;
  FaultDetector detector_;
  /// Counters as per-field relaxed atomics: the owning thread is the only
  /// writer, but metrics collectors and benches snapshot concurrently —
  /// plain fields would be a torn (and formally racy) read.  Field names
  /// mirror the public Stats POD; stats_snapshot() assembles it.
  struct AtomicStats {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> served_remote_cache{0};
    std::atomic<std::uint64_t> served_remote_fetch{0};
    std::atomic<std::uint64_t> served_pfs_direct{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> nodes_flagged{0};
    std::atomic<std::uint64_t> ring_updates{0};
    std::atomic<std::uint64_t> checksum_failures{0};
    std::atomic<std::uint64_t> replicas_pushed{0};
    std::atomic<std::uint64_t> hedges_launched{0};
    std::atomic<std::uint64_t> hedge_wins{0};
    std::atomic<std::uint64_t> primary_wins_after_hedge{0};
    std::atomic<std::uint64_t> hedges_to_pfs{0};
    std::atomic<std::uint64_t> probes_sent{0};
    std::atomic<std::uint64_t> nodes_reinstated{0};
    std::atomic<std::uint64_t> suspicions_reported{0};
    std::atomic<std::uint64_t> stale_view_hints{0};
    std::atomic<std::uint64_t> epoch_fast_forwards{0};
    std::atomic<std::uint64_t> busy_rejections{0};
    std::atomic<std::uint64_t> retries_denied_by_budget{0};
    std::atomic<std::uint64_t> deadline_give_ups{0};
    std::atomic<std::uint64_t> load_hints_observed{0};
    std::atomic<std::uint64_t> spilled_reads{0};
    std::atomic<std::uint64_t> load_spread_reads{0};
    std::atomic<std::uint64_t> hot_promotions{0};
    std::atomic<std::uint64_t> hot_demotions{0};
    std::atomic<std::uint64_t> hot_invalidations{0};
    std::atomic<std::uint64_t> warm_pushes{0};
    std::atomic<std::uint64_t> warm_restores{0};
    std::atomic<std::uint64_t> warm_deferred{0};
    std::atomic<std::uint64_t> warm_invalidations{0};
    std::atomic<std::uint64_t> prefetch_planned{0};
    std::atomic<std::uint64_t> prefetch_pulls{0};
    std::atomic<std::uint64_t> prefetch_hits{0};
    std::atomic<std::uint64_t> prefetch_misses{0};
    std::atomic<std::uint64_t> prefetch_deferred{0};
    std::atomic<std::uint64_t> prefetch_local_hits{0};
    std::atomic<std::uint64_t> p2p_rescues{0};
    std::atomic<std::uint64_t> p2p_bytes{0};
    std::atomic<std::uint64_t> fenced_puts{0};
    std::atomic<std::uint64_t> reconcile_repushes{0};
  };
  AtomicStats stats_;
  LatencyRecorder latency_;
  std::shared_ptr<Mailbox> mailbox_;
  /// Token bucket shared by timeout-retries and hedge legs (no-op with
  /// retry_budget_ratio == 0).
  RetryBudget retry_budget_;
  /// Jitter stream for busy backoff; seeded from ring_seed ^ self so
  /// co-located clients never backoff in lockstep (synchronized retries
  /// re-create the very burst the backoff exists to spread).
  Rng backoff_rng_;
  /// Set by handle_busy: the next retry was directed by a shedding server
  /// (kBusy + retry_after), so it is exempt from the speculative retry
  /// budget — it is paced by the server's hint and the deadline instead.
  bool retry_is_server_directed_ = false;
  /// Per-node load view fed by piggybacked hints (single-threaded: only
  /// the owning thread's synchronous response path observes into it).
  ring::NodeLoadEstimator load_estimator_;
  /// Replication policies (placement arithmetic only; this client
  /// executes their plans).  Each is null unless its knob is on, so the
  /// all-legacy fast path in push_replicas is three null checks.
  std::unique_ptr<placement::MissRecachePolicy> miss_policy_;
  std::unique_ptr<placement::HotFanoutPolicy> hot_policy_;
  std::unique_ptr<placement::WarmStandbyPolicy> warm_policy_;
  /// Warm bookkeeping: path -> the placement generation its standbys were
  /// pushed under plus the standby set actually placed.  A generation
  /// mismatch means the marking describes a dead ring — but the bytes
  /// only move again if the recomputed standby set differs; a ring change
  /// that left this file's successors alone just adopts the new
  /// generation (most files, on most epoch bumps).  Marked at issue time;
  /// a failed push erases its entry so a later read retries.
  struct WarmMarking {
    std::uint64_t generation = 0;
    std::vector<NodeId> targets;
  };
  std::unordered_map<std::string, WarmMarking> warm_pushed_;
  /// Post-heal reconciliation scope: nodes named by ring-event deltas of
  /// kStaleView fast-forwards.  A warm re-target whose old or new standby
  /// set touches one of these nodes is counted as a reconcile re-push —
  /// the minority's divergent suffix being walked back onto the healed
  /// ring through the ordinary lazy re-target machinery.  Each file
  /// re-targets at most once per generation (the warm marking adopts the
  /// new one), so the set accumulating across heals cannot double-count;
  /// it is bounded by the cluster size.
  std::unordered_set<NodeId> reconcile_touched_;
  /// In-flight write-behind standby puts (shared with the completion
  /// callbacks, which outlive any single read).  Bounds the write-behind
  /// queue: write_behind_depth for first placements, restore_concurrency
  /// for generation repairs.
  std::shared_ptr<std::atomic<std::uint32_t>> warm_inflight_;
  /// Heat sketch + promotion state; null unless hot_fanout is on.
  std::unique_ptr<HotFilePromoter> hot_files_;
  /// Promoted files whose replica fanout has not been pushed yet — the
  /// kPut fanout needs the contents, so it rides the next successful
  /// read of the file.
  std::unordered_set<std::string> pending_hot_fanout_;
  /// placement_generation() value the current promotions were made under.
  std::uint64_t hot_generation_ = 0;
  /// Tie-break stream for power-of-two-choices replica picks.  Separate
  /// from backoff_rng_ so enabling fanout never perturbs the legacy
  /// backoff jitter sequence.
  Rng spread_rng_;
  /// Epoch-ahead prefetch state (all empty/null with prefetch.enabled
  /// off).  The planner is stateless arithmetic; the staging area maps
  /// path -> pulled payload (consumed, and erased, by the first read).
  /// Pulls complete on transport pool threads and surface through the
  /// mailbox like every other async outcome; `prefetch_inflight_` is
  /// shared with the completion callbacks the same way warm_inflight_ is.
  prefetch::EpochPrefetchPlanner prefetch_planner_;
  struct StagedPrefetch {
    common::Buffer payload;
    std::uint64_t generation = 0;  ///< serving peer's ledger stamp
  };
  std::unordered_map<std::string, StagedPrefetch> staged_prefetch_;
  std::deque<std::string> prefetch_pending_;
  std::shared_ptr<std::atomic<std::uint32_t>> prefetch_inflight_;
  /// Peer-recache placement arithmetic; null unless prefetch.p2p is on.
  std::unique_ptr<placement::PeerRecachePolicy> peer_policy_;
  /// Observability (attach_observability): nullptr recorder = tracing off,
  /// the untraced path pays one null check per read.
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint32_t trace_sample_every_ = 0;
  std::uint64_t trace_seq_ = 0;
};

}  // namespace ftc::cluster
