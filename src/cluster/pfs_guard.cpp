#include "cluster/pfs_guard.hpp"

#include <algorithm>
#include <cstring>

namespace ftc::cluster {

namespace {

std::uint32_t ceil_ms(std::chrono::nanoseconds d) {
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(d);
  const std::int64_t count =
      ms.count() + (std::chrono::nanoseconds(ms) < d ? 1 : 0);
  return static_cast<std::uint32_t>(std::max<std::int64_t>(count, 1));
}

PfsFetchGuard::Outcome busy_outcome(std::string why,
                                    std::uint32_t retry_after_ms) {
  PfsFetchGuard::Outcome out{Status::busy(std::move(why))};
  out.rejected_busy = true;
  out.retry_after_ms = retry_after_ms;
  return out;
}

}  // namespace

PfsFetchGuard::PfsFetchGuard(PfsGuardOptions options)
    : options_(options) {}

PfsFetchGuard::Outcome PfsFetchGuard::fetch(const std::string& key,
                                            const FetchFn& fn,
                                            const obs::TraceContext& trace) {
  const bool traced = recorder_ != nullptr && trace.sampled;
  const std::int64_t wait_start = traced ? obs::now_ns() : 0;
  auto flight = flights_.run(
      key, [this, &key, &fn, &trace] { return fetch_as_leader(key, fn, trace); });
  Outcome out = std::move(flight.value);
  if (!flight.leader) {
    out.coalesced = true;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      // The joiner's span covers its coalesced wait on the leader's
      // flight; the leader span (if the leader was sampled) carries the
      // actual PFS read.
      recorder_->record_span(
          obs::RecordKind::kPfsFetchJoiner, trace.child(), node_, wait_start,
          obs::now_ns(),
          static_cast<std::uint32_t>(out.result.is_ok()
                                         ? StatusCode::kOk
                                         : out.result.status().code()),
          0, key);
    }
  }
  return out;
}

PfsFetchGuard::Outcome PfsFetchGuard::fetch_as_leader(
    const std::string& key, const FetchFn& fn,
    const obs::TraceContext& trace) {
  const bool traced = recorder_ != nullptr && trace.sampled;
  std::uint32_t retry_after_ms = 0;
  if (!breaker_admit(retry_after_ms)) {
    breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      recorder_->record_event(obs::RecordKind::kPfsRejected, trace.child(),
                              node_,
                              static_cast<std::uint32_t>(StatusCode::kBusy),
                              retry_after_ms, "breaker");
    }
    return busy_outcome("pfs breaker open", retry_after_ms);
  }
  {
    std::unique_lock lock(slot_mutex_);
    const bool got_slot = slot_cv_.wait_for(lock, options_.fetch_slot_wait, [this] {
      return slots_in_use_ < options_.max_concurrent_fetches;
    });
    if (!got_slot) {
      slot_rejections_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      // A half-open trial that never reached the PFS proves nothing —
      // hand the trial back so the next arrival attempts it.
      breaker_abort_trial();
      if (traced) {
        recorder_->record_event(obs::RecordKind::kPfsRejected, trace.child(),
                                node_,
                                static_cast<std::uint32_t>(StatusCode::kBusy),
                                ceil_ms(options_.fetch_slot_wait), "slots");
      }
      return busy_outcome("pfs fetch slots exhausted",
                          ceil_ms(options_.fetch_slot_wait));
    }
    ++slots_in_use_;
  }
  fetches_.fetch_add(1, std::memory_order_relaxed);
  const obs::TraceContext leader_ctx = traced ? trace.child() : obs::TraceContext{};
  const std::int64_t leader_start = traced ? obs::now_ns() : 0;
  const Clock::time_point started = Clock::now();
  StatusOr<common::Buffer> result = fn();
  const Clock::duration elapsed = Clock::now() - started;
  if (traced) {
    recorder_->record_span(
        obs::RecordKind::kPfsFetchLeader, leader_ctx, node_, leader_start,
        obs::now_ns(),
        static_cast<std::uint32_t>(result.is_ok() ? StatusCode::kOk
                                                  : result.status().code()),
        result.is_ok() ? result.value().size() : 0, key);
  }
  {
    std::lock_guard lock(slot_mutex_);
    --slots_in_use_;
  }
  slot_cv_.notify_one();
  // kNotFound is an authoritative answer, not a PFS health problem; a slow
  // success is a health problem when a latency threshold is configured.
  const bool error_failure =
      !result.is_ok() && result.status().code() != StatusCode::kNotFound;
  const bool latency_failure =
      options_.breaker_latency_threshold.count() > 0 &&
      elapsed > options_.breaker_latency_threshold;
  breaker_record(error_failure || latency_failure);
  return Outcome{std::move(result)};
}

bool PfsFetchGuard::breaker_admit(std::uint32_t& retry_after_ms) {
  std::lock_guard lock(breaker_mutex_);
  switch (breaker_state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const Clock::time_point now = Clock::now();
      if (now >= open_until_) {
        // Cooldown over: this caller becomes the single half-open trial.
        breaker_state_ = BreakerState::kHalfOpen;
        return true;
      }
      retry_after_ms = ceil_ms(open_until_ - now);
      return false;
    }
    case BreakerState::kHalfOpen:
      // A trial is already probing the PFS; everyone else keeps waiting.
      retry_after_ms = ceil_ms(options_.breaker_cooldown);
      return false;
  }
  return true;
}

void PfsFetchGuard::breaker_record(bool failure) {
  std::lock_guard lock(breaker_mutex_);
  if (breaker_state_ == BreakerState::kHalfOpen) {
    if (failure) {
      breaker_state_ = BreakerState::kOpen;
      open_until_ = Clock::now() + options_.breaker_cooldown;
      breaker_trips_.fetch_add(1, std::memory_order_relaxed);
    } else {
      breaker_state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
    }
    return;
  }
  if (!failure) {
    consecutive_failures_ = 0;
    return;
  }
  if (++consecutive_failures_ >= options_.breaker_failure_threshold &&
      breaker_state_ == BreakerState::kClosed) {
    breaker_state_ = BreakerState::kOpen;
    open_until_ = Clock::now() + options_.breaker_cooldown;
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PfsFetchGuard::breaker_abort_trial() {
  std::lock_guard lock(breaker_mutex_);
  if (breaker_state_ == BreakerState::kHalfOpen) {
    // open_until_ already lies in the past, so the next admit re-enters
    // half-open immediately rather than serving a second cooldown.
    breaker_state_ = BreakerState::kOpen;
  }
}

bool PfsFetchGuard::breaker_open() const {
  std::lock_guard lock(breaker_mutex_);
  return breaker_state_ != BreakerState::kClosed;
}

PfsFetchGuard::Stats PfsFetchGuard::stats_snapshot() const {
  // Field-by-field loads of independently updated counters can observe a
  // torn snapshot (e.g. a coalesced count that exceeds fetches).  Bounded
  // double-read: retry while two back-to-back reads disagree, settling
  // for the last read if the counters keep moving.
  const auto load_all = [this] {
    Stats s;
    s.fetches = fetches_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.slot_rejections = slot_rejections_.load(std::memory_order_relaxed);
    s.breaker_rejections = breaker_rejections_.load(std::memory_order_relaxed);
    s.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
    return s;
  };
  Stats snap = load_all();
  for (int round = 0; round < 3; ++round) {
    const Stats again = load_all();
    if (std::memcmp(&snap, &again, sizeof(Stats)) == 0) break;
    snap = again;
  }
  return snap;
}

}  // namespace ftc::cluster
