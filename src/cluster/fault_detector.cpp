#include "cluster/fault_detector.hpp"

#include <algorithm>

namespace ftc::cluster {

const char* node_health_name(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kSuspect: return "suspect";
    case NodeHealth::kProbation: return "probation";
    case NodeHealth::kFailed: return "failed";
  }
  return "?";
}

FaultDetector::FaultDetector(Options options) : options_(options) {
  if (options_.timeout_limit == 0) options_.timeout_limit = 1;
  if (options_.probe_backoff <= std::chrono::milliseconds::zero()) {
    options_.probe_backoff = std::chrono::milliseconds(1);
  }
  if (options_.probe_backoff_cap < options_.probe_backoff) {
    options_.probe_backoff_cap = options_.probe_backoff;
  }
}

FaultDetector::FaultDetector(std::uint32_t timeout_limit)
    : FaultDetector(Options{.timeout_limit = timeout_limit,
                            .allow_reinstatement = false}) {}

std::chrono::milliseconds FaultDetector::backoff_after(
    std::uint32_t failed_probes) const {
  auto backoff = options_.probe_backoff;
  for (std::uint32_t i = 0; i < failed_probes; ++i) {
    backoff *= 2;
    if (backoff >= options_.probe_backoff_cap) {
      return options_.probe_backoff_cap;
    }
  }
  return std::min(backoff, options_.probe_backoff_cap);
}

bool FaultDetector::take_out_of_service(NodeState& state,
                                        Clock::time_point now) {
  state.consecutive_timeouts = 0;
  // A node that was reinstated and trips the limit again is flapping;
  // after max_flaps cycles it is declared dead for good.
  if (!options_.allow_reinstatement ||
      state.flaps >= options_.max_flaps) {
    state.health = NodeHealth::kFailed;
    return true;
  }
  state.health = NodeHealth::kProbation;
  state.failed_probes = 0;
  state.next_probe = now + backoff_after(0);
  ++probation_count_;
  return true;
}

bool FaultDetector::record_timeout(NodeId node, Clock::time_point now) {
  ++total_timeouts_;
  NodeState& state = nodes_[node];
  if (state.health == NodeHealth::kProbation ||
      state.health == NodeHealth::kFailed) {
    return false;  // already out of service
  }
  ++state.consecutive_timeouts;
  if (state.consecutive_timeouts >= options_.timeout_limit) {
    return take_out_of_service(state, now);
  }
  state.health = NodeHealth::kSuspect;
  return false;
}

void FaultDetector::record_success(NodeId node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  NodeState& state = it->second;
  if (state.health != NodeHealth::kSuspect) return;
  // Transient delay resolved before the limit: false positive avoided.
  ++suppressed_;
  state.consecutive_timeouts = 0;
  state.health = NodeHealth::kHealthy;
}

NodeHealth FaultDetector::health(NodeId node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() ? it->second.health : NodeHealth::kHealthy;
}

bool FaultDetector::is_failed(NodeId node) const {
  return health(node) == NodeHealth::kFailed;
}

bool FaultDetector::is_out_of_service(NodeId node) const {
  const NodeHealth h = health(node);
  return h == NodeHealth::kProbation || h == NodeHealth::kFailed;
}

std::vector<NodeId> FaultDetector::probe_candidates(
    Clock::time_point now) const {
  std::vector<NodeId> due;
  if (probation_count_ == 0) return due;
  for (const auto& [node, state] : nodes_) {
    if (state.health == NodeHealth::kProbation && state.next_probe <= now) {
      due.push_back(node);
    }
  }
  std::sort(due.begin(), due.end());
  return due;
}

void FaultDetector::record_probe_launch(NodeId node, Clock::time_point now) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.health != NodeHealth::kProbation) {
    return;
  }
  // Pessimistically schedule the next probe as if this one fails; a
  // success reinstates the node and makes the deadline moot.
  it->second.next_probe = now + backoff_after(it->second.failed_probes + 1);
}

bool FaultDetector::record_probe_success(NodeId node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.health != NodeHealth::kProbation) {
    return false;
  }
  NodeState& state = it->second;
  state.health = NodeHealth::kHealthy;
  state.consecutive_timeouts = 0;
  state.failed_probes = 0;
  ++state.flaps;  // counts re-entries: next probation may mean flapping
  --probation_count_;
  ++reinstatements_;
  return true;
}

void FaultDetector::reset_node(NodeId node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  if (it->second.health == NodeHealth::kProbation) --probation_count_;
  nodes_.erase(it);
}

void FaultDetector::record_probe_failure(NodeId node, Clock::time_point now) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.health != NodeHealth::kProbation) {
    return;
  }
  NodeState& state = it->second;
  ++state.failed_probes;
  state.next_probe = now + backoff_after(state.failed_probes);
}

std::uint32_t FaultDetector::timeout_count(NodeId node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() ? it->second.consecutive_timeouts : 0;
}

std::uint32_t FaultDetector::flap_count(NodeId node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() ? it->second.flaps : 0;
}

std::vector<NodeId> FaultDetector::failed_nodes() const {
  std::vector<NodeId> failed;
  for (const auto& [node, state] : nodes_) {
    if (state.health == NodeHealth::kFailed) failed.push_back(node);
  }
  std::sort(failed.begin(), failed.end());
  return failed;
}

std::size_t FaultDetector::failed_count() const {
  return failed_nodes().size();
}

std::vector<NodeId> FaultDetector::probation_nodes() const {
  std::vector<NodeId> probation;
  for (const auto& [node, state] : nodes_) {
    if (state.health == NodeHealth::kProbation) probation.push_back(node);
  }
  std::sort(probation.begin(), probation.end());
  return probation;
}

}  // namespace ftc::cluster
