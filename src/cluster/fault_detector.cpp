#include "cluster/fault_detector.hpp"

namespace ftc::cluster {

FaultDetector::FaultDetector(std::uint32_t timeout_limit)
    : timeout_limit_(timeout_limit == 0 ? 1 : timeout_limit) {}

bool FaultDetector::record_timeout(NodeId node) {
  ++total_timeouts_;
  if (failed_.contains(node)) return false;
  const std::uint32_t count = ++counters_[node];
  if (count >= timeout_limit_) {
    failed_.insert(node);
    counters_.erase(node);
    return true;
  }
  return false;
}

void FaultDetector::record_success(NodeId node) {
  if (failed_.contains(node)) return;
  const auto it = counters_.find(node);
  if (it != counters_.end() && it->second > 0) {
    ++suppressed_;
    counters_.erase(it);
  }
}

bool FaultDetector::is_failed(NodeId node) const {
  return failed_.contains(node);
}

std::uint32_t FaultDetector::timeout_count(NodeId node) const {
  const auto it = counters_.find(node);
  return it != counters_.end() ? it->second : 0;
}

std::vector<NodeId> FaultDetector::failed_nodes() const {
  return {failed_.begin(), failed_.end()};
}

}  // namespace ftc::cluster
