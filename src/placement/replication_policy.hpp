// replication_policy.hpp - The cluster's unified write/replication surface.
//
// Before this layer existed, three ad-hoc paths pushed bytes into peer
// caches — the client's miss-recache loop (replication extension), the
// hot-file kPut fanout (skew placement), and the server's own recache
// enqueue — each with its own knobs, stats and owner-chain walk.  A
// ReplicationPolicy turns "who else should hold these bytes, and how
// urgently" into one question with one answer shape:
//
//   inputs : path, the primary holder, the epoch'd placement generation,
//            the resolved ring owner chain, an exclusion predicate
//   outputs: a ReplicaPlan — target nodes, a write class (inline vs
//            write-behind), and an optional generation stamp
//
// Policies are pure placement arithmetic: they never talk to a transport,
// hold no locks, and are trivially unit-testable.  The client (and the
// server, for its local recache) executes the plans; merge_plans() folds
// several concurrently firing policies into one deduplicated kPut set so
// a node is never sent two generations of the same replica in one fill
// (the hot-fanout / warm-standby overlap fix).
//
// The WarmStandbyPolicy is the new behaviour this interface was built
// for: every authoritative cache fill is write-behind replicated to the
// next `factor` distinct ring successors, stamped with the placement
// generation so a ring-epoch change lazily invalidates and re-targets the
// standbys.  On a node death the clockwise successor — the node every key
// fails over to — already holds the bytes, so a failover storm triggers
// ~0 PFS fetches (ROADMAP item 1, "warm failover").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace ftc::placement {

/// Why a replication pass is firing.  Policies receive the full context
/// either way; the trigger is telemetry and write-class vocabulary.
enum class ReplicationTrigger : std::uint8_t {
  kMissRecache = 0,  ///< Client observed an authoritative fill on a miss.
  kHotFanout = 1,    ///< Popularity sketch promoted the file.
  kWarmStandby = 2,  ///< Proactive standby placement / generation repair.
  kLocalFill = 3,    ///< Server recaching its own PFS fetch.
  kPeerRecache = 4,  ///< A p2p rescue (kPeerGet from a warm peer) healing
                     ///< the authoritative owner node-to-node instead of
                     ///< letting it re-fetch from the PFS.
};

const char* trigger_name(ReplicationTrigger trigger);

/// How the executor must push the plan's targets.
enum class WriteClass : std::uint8_t {
  kSyncInline = 0,       ///< Caller blocks per target (legacy miss-recache:
                         ///< the fill and its backups land together).
  kAsyncWriteBehind = 1  ///< Queued on the async pool; the read path never
                         ///< serializes behind replica pushes.
};

/// One replica destination with the trigger that wants it (telemetry).
struct ReplicaTarget {
  NodeId node = kInvalidNode;
  ReplicationTrigger trigger = ReplicationTrigger::kMissRecache;
};

/// A policy's answer: where the bytes go and how.
struct ReplicaPlan {
  std::vector<ReplicaTarget> targets;
  WriteClass write_class = WriteClass::kSyncInline;
  /// Placement generation the targets were derived from; 0 = unstamped
  /// (legacy puts — the wire default, bit-for-bit the old kPut).
  std::uint64_t generation = 0;
};

/// Everything a policy may consult.  The caller resolves the owner chain
/// once (against its epoch'd ring view) for the longest chain_length()
/// over the policies it is about to ask — policies never walk the ring
/// themselves, which is what deleted the three duplicated chain walks.
struct PlanContext {
  std::string_view path;
  /// The node that served / authoritatively holds the fill; never a
  /// replica target (it has the bytes already).
  NodeId primary = kInvalidNode;
  /// Epoch'd placement generation (membership epoch, or the client's
  /// local ring-surgery counter in legacy mode).
  std::uint64_t generation = 0;
  /// First N distinct ring owners clockwise from `path`'s position,
  /// N >= the policy's chain_length().  May be shorter when membership
  /// is smaller.  Never null.
  const std::vector<NodeId>* chain = nullptr;
  /// True for nodes the caller must not target (failed / suspect).
  /// Never null.
  const std::function<bool(NodeId)>* excluded = nullptr;
};

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Distinct ring owners the caller must resolve into ctx.chain.
  [[nodiscard]] virtual std::size_t chain_length() const = 0;

  /// Pure function of the context: the target set and write class.
  [[nodiscard]] virtual ReplicaPlan plan(const PlanContext& ctx) const = 0;
};

/// The replication extension's legacy behaviour (PR 1): on a miss fill,
/// synchronously place backups on the first `factor` distinct ring owners
/// beyond the primary.  Unstamped — invalidation is "the successor sees a
/// miss and recaches", exactly the paper's elastic flow.
class MissRecachePolicy final : public ReplicationPolicy {
 public:
  explicit MissRecachePolicy(std::uint32_t factor) : factor_(factor) {}
  [[nodiscard]] std::string_view name() const override {
    return "miss_recache";
  }
  [[nodiscard]] std::size_t chain_length() const override { return factor_; }
  [[nodiscard]] ReplicaPlan plan(const PlanContext& ctx) const override;

 private:
  std::uint32_t factor_;
};

/// The hot-file fanout (PR 7): asynchronously place a promoted file on
/// its whole replica set so reads can load-spread across it.  Unstamped —
/// the promoter invalidates replica sets wholesale on an epoch bump.
class HotFanoutPolicy final : public ReplicationPolicy {
 public:
  explicit HotFanoutPolicy(std::uint32_t fanout) : fanout_(fanout) {}
  [[nodiscard]] std::string_view name() const override { return "hot_fanout"; }
  [[nodiscard]] std::size_t chain_length() const override { return fanout_; }
  [[nodiscard]] ReplicaPlan plan(const PlanContext& ctx) const override;

 private:
  std::uint32_t fanout_;
};

/// Warm failover: every authoritative fill is write-behind replicated to
/// the next `factor` distinct ring successors, generation-stamped so the
/// receiving server can refuse a stale-ring replica and an epoch change
/// lazily re-targets the standbys.  The successor a failure routes keys
/// to is by construction the standby holder — degraded reads hit NVMe,
/// not the PFS.
class WarmStandbyPolicy final : public ReplicationPolicy {
 public:
  explicit WarmStandbyPolicy(std::uint32_t factor) : factor_(factor) {}
  [[nodiscard]] std::string_view name() const override {
    return "warm_standby";
  }
  [[nodiscard]] std::size_t chain_length() const override { return factor_; }
  [[nodiscard]] ReplicaPlan plan(const PlanContext& ctx) const override;

 private:
  std::uint32_t factor_;
};

/// Peer-to-peer recache (prefetch extension): a read was rescued over
/// kPeerGet from a warm peer (ring owner gone stale, or a standby) while
/// the authoritative owner does not hold the bytes.  The plan heals that
/// owner with one write-behind put — node-to-node, never via the PFS —
/// stamped with the generation the serving peer's ledger reported, so the
/// hop cannot launder a stale replica into a fresh-looking one.  Merged
/// through merge_plans() like every other producer, a shared successor
/// that warm standby is also targeting still receives exactly one kPut.
class PeerRecachePolicy final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "peer_recache";
  }
  [[nodiscard]] std::size_t chain_length() const override { return 2; }
  [[nodiscard]] ReplicaPlan plan(const PlanContext& ctx) const override;
};

/// The server's own recache of a PFS fetch, expressed in the same
/// vocabulary: no remote targets (the "replica" is the local cache), only
/// the write-class decision the data-mover knob used to make inline.
class LocalRecachePolicy final : public ReplicationPolicy {
 public:
  explicit LocalRecachePolicy(bool async_mover) : async_(async_mover) {}
  [[nodiscard]] std::string_view name() const override {
    return "local_recache";
  }
  [[nodiscard]] std::size_t chain_length() const override { return 0; }
  [[nodiscard]] ReplicaPlan plan(const PlanContext& ctx) const override;

 private:
  bool async_;
};

/// One deduplicated kPut destination folded from several plans.
struct MergedTarget {
  NodeId node = kInvalidNode;
  /// Sync wins: if any contributing plan wants the target inline, the
  /// merged put is inline (the async plans just ride along).
  WriteClass write_class = WriteClass::kAsyncWriteBehind;
  /// Max over contributing plans — a node never receives an older
  /// generation of a replica it is also getting fresh.
  std::uint64_t generation = 0;
  /// OR of (1 << trigger) over contributing plans.
  std::uint8_t triggers = 0;

  [[nodiscard]] bool has_trigger(ReplicationTrigger trigger) const {
    return (triggers & static_cast<std::uint8_t>(
                           1U << static_cast<std::uint8_t>(trigger))) != 0;
  }
};

/// Folds concurrently firing plans into one put per node, preserving the
/// ring-chain order of first appearance.  This is the hot/warm overlap
/// fix: both policies walk the same successor chain, so without the merge
/// a shared successor would be sent the file twice — once unstamped, once
/// generation-stamped — and could end up storing two generations of the
/// same replica.
std::vector<MergedTarget> merge_plans(const std::vector<ReplicaPlan>& plans);

/// Replication knobs, collapsed from the old per-feature sprawl into one
/// nested block (HvacClientConfig::replication).  Old -> new mapping:
///   replication_factor  ->  replication.factor
/// (warm_standby, write_behind_depth and restore_concurrency are new.)
struct ReplicationConfig {
  /// Distinct ring owners that should hold every file (1 = the paper's
  /// single-owner system; backups beyond the primary are factor - 1).
  /// Valid: >= 1, <= cluster size at construction.
  std::uint32_t factor = 1;
  /// Warm failover: proactively replicate every authoritative fill to the
  /// next factor - 1 ring successors (write-behind, generation-stamped)
  /// so a node death is served from standby NVMe with ~0 PFS fetches.
  /// Requires factor >= 2 and hash-ring mode.
  bool warm_standby = false;
  /// Max in-flight write-behind standby puts per client for first-time
  /// placement; pushes beyond it are deferred to a later read.
  /// Valid with warm_standby: >= 1.
  std::uint32_t write_behind_depth = 64;
  /// Max in-flight standby re-pushes per client while repairing the
  /// replication factor after a ring-epoch change (the background restore
  /// is paced separately so repair traffic cannot monopolize the pool).
  /// Valid with warm_standby: >= 1.
  std::uint32_t restore_concurrency = 4;

  /// Rejects contradictory knob combinations; `cluster_size` (0 =
  /// unknown) additionally bounds factor.  Mode gating (warm_standby
  /// needs the hash ring) lives with the owning config, which knows the
  /// placement mode.
  [[nodiscard]] Status validate(std::size_t cluster_size = 0) const;
};

}  // namespace ftc::placement
