#include "placement/replication_policy.hpp"

#include <algorithm>

namespace ftc::placement {

const char* trigger_name(ReplicationTrigger trigger) {
  switch (trigger) {
    case ReplicationTrigger::kMissRecache: return "miss_recache";
    case ReplicationTrigger::kHotFanout: return "hot_fanout";
    case ReplicationTrigger::kWarmStandby: return "warm_standby";
    case ReplicationTrigger::kLocalFill: return "local_fill";
    case ReplicationTrigger::kPeerRecache: return "peer_recache";
  }
  return "?";
}

namespace {

/// Shared chain walk: every chain member except the primary and the
/// excluded, in clockwise order — the one owner-chain traversal that used
/// to be copy-pasted per feature.
void targets_from_chain(const PlanContext& ctx, ReplicationTrigger trigger,
                        ReplicaPlan& plan) {
  for (const NodeId node : *ctx.chain) {
    if (node == ctx.primary || (*ctx.excluded)(node)) continue;
    plan.targets.push_back({node, trigger});
  }
}

}  // namespace

ReplicaPlan MissRecachePolicy::plan(const PlanContext& ctx) const {
  ReplicaPlan result;
  result.write_class = WriteClass::kSyncInline;
  if (factor_ <= 1) return result;
  targets_from_chain(ctx, ReplicationTrigger::kMissRecache, result);
  return result;
}

ReplicaPlan HotFanoutPolicy::plan(const PlanContext& ctx) const {
  ReplicaPlan result;
  result.write_class = WriteClass::kAsyncWriteBehind;
  if (fanout_ < 2) return result;
  targets_from_chain(ctx, ReplicationTrigger::kHotFanout, result);
  return result;
}

ReplicaPlan WarmStandbyPolicy::plan(const PlanContext& ctx) const {
  ReplicaPlan result;
  result.write_class = WriteClass::kAsyncWriteBehind;
  // Wire stamp is generation + 1: 0 is the wire's "unstamped legacy put"
  // sentinel, and a cluster that has never changed its ring sits at
  // generation 0.  The bias is monotone, so the server's freshness
  // comparisons are unaffected.
  result.generation = ctx.generation + 1;
  if (factor_ < 2) return result;
  targets_from_chain(ctx, ReplicationTrigger::kWarmStandby, result);
  return result;
}

ReplicaPlan PeerRecachePolicy::plan(const PlanContext& ctx) const {
  ReplicaPlan result;
  result.write_class = WriteClass::kAsyncWriteBehind;
  // Forward the serving peer's ledger stamp verbatim (the caller put it in
  // ctx.generation): the healed owner must not outrank genuinely fresher
  // standby generations it may receive concurrently.
  result.generation = ctx.generation;
  // Only the authoritative owner — the first eligible chain node — is
  // healed; deeper standbys are warm standby's job, not the rescue's.
  for (const NodeId node : *ctx.chain) {
    if (node == ctx.primary || (*ctx.excluded)(node)) continue;
    result.targets.push_back({node, ReplicationTrigger::kPeerRecache});
    break;
  }
  return result;
}

ReplicaPlan LocalRecachePolicy::plan(const PlanContext& ctx) const {
  (void)ctx;
  ReplicaPlan result;
  result.write_class =
      async_ ? WriteClass::kAsyncWriteBehind : WriteClass::kSyncInline;
  return result;
}

std::vector<MergedTarget> merge_plans(const std::vector<ReplicaPlan>& plans) {
  std::vector<MergedTarget> merged;
  for (const ReplicaPlan& plan : plans) {
    for (const ReplicaTarget& target : plan.targets) {
      auto existing = std::find_if(
          merged.begin(), merged.end(),
          [&target](const MergedTarget& m) { return m.node == target.node; });
      if (existing == merged.end()) {
        merged.push_back(MergedTarget{
            target.node, plan.write_class, plan.generation,
            static_cast<std::uint8_t>(
                1U << static_cast<std::uint8_t>(target.trigger))});
        continue;
      }
      if (plan.write_class == WriteClass::kSyncInline) {
        existing->write_class = WriteClass::kSyncInline;
      }
      existing->generation = std::max(existing->generation, plan.generation);
      existing->triggers |= static_cast<std::uint8_t>(
          1U << static_cast<std::uint8_t>(target.trigger));
    }
  }
  return merged;
}

Status ReplicationConfig::validate(std::size_t cluster_size) const {
  if (factor == 0) {
    return Status::invalid_argument("replication.factor must be >= 1");
  }
  if (cluster_size > 0 && factor > cluster_size) {
    return Status::invalid_argument(
        "replication.factor (" + std::to_string(factor) +
        ") exceeds cluster size (" + std::to_string(cluster_size) + ")");
  }
  if (warm_standby) {
    if (factor < 2) {
      return Status::invalid_argument(
          "replication.warm_standby needs factor >= 2 (a standby is a "
          "second distinct owner)");
    }
    if (write_behind_depth == 0) {
      return Status::invalid_argument(
          "replication.write_behind_depth must be >= 1 with warm_standby");
    }
    if (restore_concurrency == 0) {
      return Status::invalid_argument(
          "replication.restore_concurrency must be >= 1 with warm_standby");
    }
  }
  return Status::ok();
}

}  // namespace ftc::placement
