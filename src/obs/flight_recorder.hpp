// flight_recorder.hpp - Per-node lock-free ring buffer of recent spans
// and membership/ring events.
//
// The postmortem instrument: every node keeps the last `capacity` spans
// (client attempts, hedge legs, server phases, PFS singleflight roles)
// and ring/membership events in a bounded ring, and benches/tests dump it
// on demand to reconstruct a storm timeline — first suspicion, ring epoch
// bump, first coalesced PFS fetch, p99 recovery — without any logging on
// the hot path.
//
// Concurrency design (TSan-clean, wait-free writers):
//   - Writers claim a slot with one relaxed fetch_add on `head_`, then
//     write the record as fixed-width atomic words (relaxed) and publish
//     by storing the slot's sequence word with release order.  No locks,
//     no allocation, no CAS loops — a writer can never block another
//     writer or a reader.
//   - The sequence word is odd while a write is in progress and
//     `2*(position+1)` once published (monotonic per slot, like a
//     per-slot seqlock).  Readers load it with acquire, copy the payload
//     words, and re-check the sequence: a concurrent overwrite changes
//     the sequence, so torn records are detected and skipped rather than
//     returned.
//   - Overwrites are by design: the ring holds the *most recent*
//     `capacity` records; wraparound silently discards the oldest.
//
// Records are fixed-size (a short `detail` tag, no strings on the write
// path), so recording costs a slot claim plus ~14 relaxed stores.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "obs/trace_context.hpp"

namespace ftc::obs {

/// What a record describes.  Span kinds carry [start_ns, end_ns]; event
/// kinds are instantaneous (end_ns == start_ns).
enum class RecordKind : std::uint8_t {
  // Client-side spans.
  kClientRead = 0,     ///< Root span: one read_file call end to end.
  kClientAttempt = 1,  ///< One primary RPC attempt within a read.
  kHedgeLeg = 2,       ///< Speculative second request raced by hedging.
  kBusyRetry = 3,      ///< Server-directed retry after a kBusy rejection.
  kPfsDirect = 4,      ///< Client read the PFS itself (fallback path).
  // Server-side spans.
  kServerQueue = 5,    ///< Admission -> worker pickup (ingress queue wait).
  kServerHandle = 6,   ///< Worker execute phase (dispatch through reply).
  kServerShed = 7,     ///< Event: request shed (admission kBusy or
                       ///< expired-deadline on arrival).
  // PFS singleflight roles.
  kPfsFetchLeader = 8,  ///< This caller executed the PFS fetch.
  kPfsFetchJoiner = 9,  ///< This caller coalesced onto a leader's flight.
  kPfsRejected = 10,    ///< Event: guard refused (breaker open / no slot).
  // Membership / ring events.
  kSuspicion = 11,   ///< Event: local detector flagged a node.
  kRingUpdate = 12,  ///< Event: placement changed (remove/add/reinstate).
  // Skew-tolerant placement events.
  kLoadSpill = 13,     ///< Event: bounded-load lookup routed past the
                       ///< primary (value = spill target node).
  kHotPromotion = 14,  ///< Event: file promoted to a hot replica set.
  kHotDemotion = 15,   ///< Event: promotion dropped (heat decay or ring
                       ///< epoch bump; code distinguishes which).
  // Warm-failover events.
  kWarmPush = 16,  ///< Event: standby replica push issued (code kOk =
                   ///< first placement, kUnavailable = generation repair
                   ///< after a ring-epoch change; value = generation).
  // Epoch-ahead prefetch / p2p recache events.
  kPrefetchPlan = 17,  ///< Event: epoch-boundary plan computed (value =
                       ///< pulls planned; code kOk = fresh plan,
                       ///< kCancelled = previous epoch's pulls deferred).
  kPeerRecache = 18,   ///< Event: a read was rescued node-to-node over
                       ///< kPeerGet instead of falling back to the PFS
                       ///< (value = serving peer node).
  // Partition-tolerance events.
  kPartitionStart = 19,      ///< Event: injector severed a set of links
                             ///< (value = blocked link count, code = 1 for
                             ///< a one-way split).
  kPartitionHeal = 20,       ///< Event: injector restored connectivity.
  kPartitionFence = 21,      ///< Event: server rejected a stale-epoch write
                             ///< (value = the write's ring epoch, code =
                             ///< the server's current epoch, truncated).
  kPartitionReconcile = 22,  ///< Event: post-heal re-target re-pushed a
                             ///< replica chain touched by the partition
                             ///< (value = the file's new generation).
};

const char* record_kind_name(RecordKind kind);

/// True for kinds with a meaningful duration (spans), false for point
/// events.
constexpr bool record_is_span(RecordKind kind) {
  return kind != RecordKind::kServerShed && kind != RecordKind::kPfsRejected &&
         kind != RecordKind::kSuspicion && kind != RecordKind::kRingUpdate &&
         kind != RecordKind::kLoadSpill && kind != RecordKind::kHotPromotion &&
         kind != RecordKind::kHotDemotion && kind != RecordKind::kWarmPush &&
         kind != RecordKind::kPrefetchPlan && kind != RecordKind::kPeerRecache &&
         kind != RecordKind::kPartitionStart &&
         kind != RecordKind::kPartitionHeal &&
         kind != RecordKind::kPartitionFence &&
         kind != RecordKind::kPartitionReconcile;
}

/// One decoded flight-recorder entry.
struct Record {
  /// Global write sequence (0-based claim order).  Strictly increasing
  /// across a dump; the `epoch` of dump_since.
  std::uint64_t seq = 0;
  RecordKind kind = RecordKind::kClientRead;
  /// Node the record is *about* (span subject / event subject), not
  /// necessarily the node whose recorder holds it.
  ftc::NodeId node = ftc::kInvalidNode;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  /// StatusCode for spans; RingEventType for kRingUpdate.
  std::uint32_t code = 0;
  /// Kind-specific payload: ring epoch, attempt index, retry-after hint.
  std::uint64_t value = 0;

  /// Short cause/verdict tag ("primary", "hedge_win", "breaker", ...).
  /// Truncated to kDetailBytes on write; never allocates on the hot path.
  static constexpr std::size_t kDetailBytes = 40;
  std::array<char, kDetailBytes> detail{};

  void set_detail(std::string_view tag) {
    const std::size_t n = tag.size() < kDetailBytes ? tag.size() : kDetailBytes;
    std::memcpy(detail.data(), tag.data(), n);
    if (n < kDetailBytes) detail[n] = '\0';
  }
  [[nodiscard]] std::string_view detail_view() const {
    const auto* end =
        static_cast<const char*>(std::memchr(detail.data(), '\0', kDetailBytes));
    return {detail.data(),
            end != nullptr ? static_cast<std::size_t>(end - detail.data())
                           : kDetailBytes};
  }
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8) so slot
  /// selection is a mask, not a division.
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Wait-free append; safe from any number of concurrent threads.  The
  /// record's `seq` field is assigned by the recorder (claim order).
  void record(const Record& r);

  /// Convenience: record a span derived from a trace context.
  void record_span(RecordKind kind, const TraceContext& ctx, ftc::NodeId node,
                   std::int64_t start_ns, std::int64_t end_ns,
                   std::uint32_t code, std::uint64_t value,
                   std::string_view detail);

  /// Convenience: record an instantaneous event (no trace linkage
  /// required; pass a default TraceContext for untraced events).
  void record_event(RecordKind kind, const TraceContext& ctx, ftc::NodeId node,
                    std::uint32_t code, std::uint64_t value,
                    std::string_view detail);

  /// Every currently readable record, oldest first (ascending seq).
  /// Records mid-write or overwritten during the scan are skipped, never
  /// returned torn.
  [[nodiscard]] std::vector<Record> dump() const;

  /// Records with seq >= `epoch`, oldest first.  Pass a previous dump's
  /// max seq + 1 to page through a live recorder.
  [[nodiscard]] std::vector<Record> dump_since(std::uint64_t epoch) const;

  /// Total records ever claimed (>= capacity() means wraparound occurred).
  [[nodiscard]] std::uint64_t records_written() const {
    return head_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  // Payload packing: word 0 = kind | node<<8 (node is 32-bit, kept in
  // bits 8..39) ; 1 = trace ; 2 = span ; 3 = parent ; 4 = start ; 5 = end ;
  // 6 = code ; 7 = value ; 8..12 = detail bytes.
  static constexpr std::size_t kDetailWords = Record::kDetailBytes / 8;
  static constexpr std::size_t kPayloadWords = 8 + kDetailWords;

  struct Slot {
    /// 0 = never written; odd = write in progress; 2*(pos+1) = published.
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kPayloadWords> words{};
  };

  std::atomic<std::uint64_t> head_{0};
  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
};

}  // namespace ftc::obs
