// trace_context.hpp - End-to-end request tracing identifiers.
//
// A TraceContext names one read and its position in that read's span
// tree: `trace_id` groups every span the read ever causes (client
// attempts, hedge legs, server phases, PFS singleflight roles), `span_id`
// names this particular span, and `parent_span_id` links it to the span
// that caused it.  The context rides on rpc::RpcRequest next to the
// deadline, so a server can attribute its admission/queue/execute phases
// to the exact client attempt that sent the work.
//
// Cost model: the default-constructed context is all zeroes with
// `sampled == false`, and every instrumentation site checks `sampled`
// (plus a recorder null check) before doing anything — the untraced path
// pays a branch, never an allocation or an id draw.  Id generation is a
// relaxed atomic counter run through a splitmix64 finalizer: unique
// within the process, well-mixed so truncated ids still look distinct in
// dumps, and free of any global locking.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ftc::obs {

/// Mixes a counter value into a well-distributed 64-bit id (splitmix64
/// finalizer).  Deterministic per process run; never returns 0 for the
/// counter values we feed it (we offset by 1), so 0 stays the reserved
/// "no id / untraced" value.
inline std::uint64_t mix_id(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Process-wide unique nonzero id.
inline std::uint64_t next_id() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id =
      mix_id(counter.fetch_add(1, std::memory_order_relaxed) + 1);
  return id != 0 ? id : 1;  // mix_id(0)==0 is unreachable (offset), belt+braces
}

/// Now, in integer nanoseconds on the steady clock — the same clock (and
/// epoch) as rpc::DeadlineNs, so span timestamps and deadlines compare
/// directly in postmortem dumps.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  /// True when this request was selected for tracing.  All-zero ids with
  /// sampled == false is the wire default — bit-for-bit what an
  /// uninstrumented sender produced before this field existed.
  bool sampled = false;

  /// A fresh root context (new trace, no parent).
  static TraceContext root() {
    TraceContext ctx;
    ctx.trace_id = next_id();
    ctx.span_id = next_id();
    ctx.sampled = true;
    return ctx;
  }

  /// A child span within this trace (same trace_id, this span as parent).
  /// Only meaningful on a sampled context.
  [[nodiscard]] TraceContext child() const {
    TraceContext ctx;
    ctx.trace_id = trace_id;
    ctx.span_id = next_id();
    ctx.parent_span_id = span_id;
    ctx.sampled = sampled;
    return ctx;
  }
};

}  // namespace ftc::obs
