#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ftc::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Deterministic number formatting shared by both exporters: integers
/// print without a decimal point (counter values stay exact), everything
/// else prints with %g precision.
std::string fmt_num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_json(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Labels canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string series_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Label block with one extra label appended (for histogram `le`).
std::string label_block_with(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return label_block(extended);
}

}  // namespace

// --- Gauge -----------------------------------------------------------------

std::uint64_t Gauge::to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::from_bits(std::uint64_t b) { return std::bit_cast<double>(b); }

void Gauge::add(double delta) {
  std::uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(
      observed, to_bits(from_bits(observed) + delta),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      observed, std::bit_cast<std::uint64_t>(std::bit_cast<double>(observed) + v),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.cumulative.reserve(bounds_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    snap.cumulative.push_back(running);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  return snap;
}

// --- Collection ------------------------------------------------------------

struct MetricsRegistry::Collection::Sample {
  std::string name;
  Labels labels;
  Instrument::Type type;
  double value = 0.0;  // counter / gauge
  // Histogram payload.
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count = 0;
  double sum = 0.0;
};

void MetricsRegistry::Collection::counter(const std::string& name,
                                          const Labels& labels,
                                          std::uint64_t value) {
  Sample s;
  s.name = name;
  s.labels = canonical_labels(labels);
  s.type = Instrument::Type::kCounter;
  s.value = static_cast<double>(value);
  out_.push_back(std::move(s));
}

void MetricsRegistry::Collection::gauge(const std::string& name,
                                        const Labels& labels, double value) {
  Sample s;
  s.name = name;
  s.labels = canonical_labels(labels);
  s.type = Instrument::Type::kGauge;
  s.value = value;
  out_.push_back(std::move(s));
}

void MetricsRegistry::Collection::histogram(
    const std::string& name, const Labels& labels,
    const std::vector<double>& upper_bounds,
    const std::vector<std::uint64_t>& cumulative, std::uint64_t count,
    double sum) {
  Sample s;
  s.name = name;
  s.labels = canonical_labels(labels);
  s.type = Instrument::Type::kHistogram;
  s.bounds = upper_bounds;
  s.cumulative = cumulative;
  s.count = count;
  s.sum = sum;
  out_.push_back(std::move(s));
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, Instrument::Type type,
    const std::vector<double>* bounds) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name: " + name);
  }
  if (labels.size() > kMaxLabels) {
    throw std::invalid_argument("too many labels on metric " + name +
                                " (cardinality rule: <= 4)");
  }
  const Labels canon = canonical_labels(labels);
  const std::string key = series_key(name, canon);
  Stripe& stripe = stripes_[std::hash<std::string>{}(key) % kStripes];
  std::lock_guard lock(stripe.mutex);
  auto it = stripe.series.find(key);
  if (it != stripe.series.end()) {
    if (it->second->type != type) {
      throw std::invalid_argument("metric type clash for series " + name);
    }
    return *it->second;
  }
  auto inst = std::make_unique<Instrument>();
  inst->type = type;
  inst->name = name;
  inst->labels = canon;
  switch (type) {
    case Instrument::Type::kCounter:
      inst->counter = std::make_unique<Counter>();
      break;
    case Instrument::Type::kGauge:
      inst->gauge = std::make_unique<Gauge>();
      break;
    case Instrument::Type::kHistogram:
      inst->histogram = std::make_unique<Histogram>(*bounds);
      break;
  }
  auto [inserted, ok] = stripe.series.emplace(key, std::move(inst));
  (void)ok;
  return *inserted->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return *find_or_create(name, labels, Instrument::Type::kCounter, nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, Instrument::Type::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::vector<double> upper_bounds) {
  return *find_or_create(name, labels, Instrument::Type::kHistogram,
                         &upper_bounds)
              .histogram;
}

void MetricsRegistry::register_collector(Collector collector) {
  std::lock_guard lock(collectors_mutex_);
  collectors_.push_back(std::move(collector));
}

void MetricsRegistry::gather(std::vector<Collection::Sample>& out) const {
  // Owned instruments.
  for (const Stripe& stripe : stripes_) {
    std::lock_guard lock(stripe.mutex);
    for (const auto& [key, inst] : stripe.series) {
      (void)key;
      Collection sink(out);
      switch (inst->type) {
        case Instrument::Type::kCounter:
          sink.counter(inst->name, inst->labels, inst->counter->value());
          break;
        case Instrument::Type::kGauge:
          sink.gauge(inst->name, inst->labels, inst->gauge->value());
          break;
        case Instrument::Type::kHistogram: {
          const Histogram::Snapshot snap = inst->histogram->snapshot();
          sink.histogram(inst->name, inst->labels,
                         inst->histogram->upper_bounds(), snap.cumulative,
                         snap.count, snap.sum);
          break;
        }
      }
    }
  }
  // Collector callbacks (run outside the stripe locks; a collector may
  // itself consult the registry).
  std::vector<Collector> collectors;
  {
    std::lock_guard lock(collectors_mutex_);
    collectors = collectors_;
  }
  Collection sink(out);
  for (const Collector& collector : collectors) collector(sink);

  std::sort(out.begin(), out.end(),
            [](const Collection::Sample& a, const Collection::Sample& b) {
              if (a.name != b.name) return a.name < b.name;
              return series_key(a.name, a.labels) <
                     series_key(b.name, b.labels);
            });
}

std::string MetricsRegistry::export_prometheus_text() const {
  std::vector<Collection::Sample> samples;
  gather(samples);
  std::string out;
  out.reserve(samples.size() * 64);
  std::string last_typed_name;
  for (const Collection::Sample& s : samples) {
    if (s.name != last_typed_name) {
      out += "# TYPE ";
      out += s.name;
      switch (s.type) {
        case Instrument::Type::kCounter: out += " counter\n"; break;
        case Instrument::Type::kGauge: out += " gauge\n"; break;
        case Instrument::Type::kHistogram: out += " histogram\n"; break;
      }
      last_typed_name = s.name;
    }
    if (s.type == Instrument::Type::kHistogram) {
      for (std::size_t i = 0; i < s.bounds.size(); ++i) {
        out += s.name + "_bucket" +
               label_block_with(s.labels, "le", fmt_num(s.bounds[i])) + ' ' +
               fmt_num(static_cast<double>(s.cumulative[i])) + '\n';
      }
      out += s.name + "_bucket" + label_block_with(s.labels, "le", "+Inf") +
             ' ' + fmt_num(static_cast<double>(s.count)) + '\n';
      out += s.name + "_sum" + label_block(s.labels) + ' ' + fmt_num(s.sum) +
             '\n';
      out += s.name + "_count" + label_block(s.labels) + ' ' +
             fmt_num(static_cast<double>(s.count)) + '\n';
    } else {
      out += s.name + label_block(s.labels) + ' ' + fmt_num(s.value) + '\n';
    }
  }
  return out;
}

std::string MetricsRegistry::export_json() const {
  std::vector<Collection::Sample> samples;
  gather(samples);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Collection::Sample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + escape_json(s.name) + "\",\"type\":\"";
    switch (s.type) {
      case Instrument::Type::kCounter: out += "counter"; break;
      case Instrument::Type::kGauge: out += "gauge"; break;
      case Instrument::Type::kHistogram: out += "histogram"; break;
    }
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"' + escape_json(k) + "\":\"" + escape_json(v) + '"';
    }
    out += '}';
    if (s.type == Instrument::Type::kHistogram) {
      out += ",\"buckets\":[";
      for (std::size_t i = 0; i < s.bounds.size(); ++i) {
        if (i != 0) out += ',';
        out += "{\"le\":" + fmt_num(s.bounds[i]) +
               ",\"count\":" + fmt_num(static_cast<double>(s.cumulative[i])) +
               '}';
      }
      if (!s.bounds.empty()) out += ',';
      out += "{\"le\":\"+Inf\",\"count\":" +
             fmt_num(static_cast<double>(s.count)) + "}]";
      out += ",\"count\":" + fmt_num(static_cast<double>(s.count));
      out += ",\"sum\":" + fmt_num(s.sum);
    } else {
      out += ",\"value\":" + fmt_num(s.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace ftc::obs
