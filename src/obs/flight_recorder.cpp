#include "obs/flight_recorder.hpp"

#include <algorithm>

namespace ftc::obs {

const char* record_kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kClientRead: return "client_read";
    case RecordKind::kClientAttempt: return "client_attempt";
    case RecordKind::kHedgeLeg: return "hedge_leg";
    case RecordKind::kBusyRetry: return "busy_retry";
    case RecordKind::kPfsDirect: return "pfs_direct";
    case RecordKind::kServerQueue: return "server_queue";
    case RecordKind::kServerHandle: return "server_handle";
    case RecordKind::kServerShed: return "server_shed";
    case RecordKind::kPfsFetchLeader: return "pfs_fetch_leader";
    case RecordKind::kPfsFetchJoiner: return "pfs_fetch_joiner";
    case RecordKind::kPfsRejected: return "pfs_rejected";
    case RecordKind::kSuspicion: return "suspicion";
    case RecordKind::kRingUpdate: return "ring_update";
    case RecordKind::kLoadSpill: return "load_spill";
    case RecordKind::kHotPromotion: return "hot_promotion";
    case RecordKind::kHotDemotion: return "hot_demotion";
    case RecordKind::kWarmPush: return "warm_push";
    case RecordKind::kPrefetchPlan: return "prefetch_plan";
    case RecordKind::kPeerRecache: return "peer_recache";
    case RecordKind::kPartitionStart: return "partition_start";
    case RecordKind::kPartitionHeal: return "partition_heal";
    case RecordKind::kPartitionFence: return "partition_fence";
    case RecordKind::kPartitionReconcile: return "partition_reconcile";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

void FlightRecorder::record(const Record& r) {
  const std::uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[pos & mask_];

  // Mark the slot dirty (odd) so a concurrent reader rejects it, write
  // the payload words relaxed, then publish with a release store the
  // reader's acquire load pairs with.  The release fence keeps the dirty
  // marker visible before any payload word: a reader that saw a fresh
  // word and then fences (acquire) must also see the marker, so its seq
  // re-check rejects the torn copy (Boehm's seqlock construction).
  slot.seq.store(2 * pos + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);

  std::array<std::uint64_t, kPayloadWords> words{};
  words[0] = static_cast<std::uint64_t>(r.kind) |
             (static_cast<std::uint64_t>(r.node) << 8);
  words[1] = r.trace_id;
  words[2] = r.span_id;
  words[3] = r.parent_span_id;
  words[4] = static_cast<std::uint64_t>(r.start_ns);
  words[5] = static_cast<std::uint64_t>(r.end_ns);
  words[6] = r.code;
  words[7] = r.value;
  std::memcpy(&words[8], r.detail.data(), Record::kDetailBytes);
  for (std::size_t i = 0; i < kPayloadWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }

  slot.seq.store(2 * (pos + 1), std::memory_order_release);
}

void FlightRecorder::record_span(RecordKind kind, const TraceContext& ctx,
                                 ftc::NodeId node, std::int64_t start_ns,
                                 std::int64_t end_ns, std::uint32_t code,
                                 std::uint64_t value, std::string_view detail) {
  Record r;
  r.kind = kind;
  r.node = node;
  r.trace_id = ctx.trace_id;
  r.span_id = ctx.span_id;
  r.parent_span_id = ctx.parent_span_id;
  r.start_ns = start_ns;
  r.end_ns = end_ns;
  r.code = code;
  r.value = value;
  r.set_detail(detail);
  record(r);
}

void FlightRecorder::record_event(RecordKind kind, const TraceContext& ctx,
                                  ftc::NodeId node, std::uint32_t code,
                                  std::uint64_t value,
                                  std::string_view detail) {
  const std::int64_t now = now_ns();
  record_span(kind, ctx, node, now, now, code, value, detail);
}

std::vector<Record> FlightRecorder::dump() const { return dump_since(0); }

std::vector<Record> FlightRecorder::dump_since(std::uint64_t epoch) const {
  std::vector<Record> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 == 0 || (seq1 & 1) != 0) continue;  // empty or mid-write
    std::array<std::uint64_t, kPayloadWords> words;
    for (std::size_t i = 0; i < kPayloadWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    // Seqlock re-check: a writer that overwrote the slot during the copy
    // bumped seq (through an odd value), so unequal means torn — skip.
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t seq2 = slot.seq.load(std::memory_order_relaxed);
    if (seq2 != seq1) continue;

    Record r;
    r.seq = seq1 / 2 - 1;
    if (r.seq < epoch) continue;
    r.kind = static_cast<RecordKind>(words[0] & 0xff);
    r.node = static_cast<ftc::NodeId>(words[0] >> 8);
    r.trace_id = words[1];
    r.span_id = words[2];
    r.parent_span_id = words[3];
    r.start_ns = static_cast<std::int64_t>(words[4]);
    r.end_ns = static_cast<std::int64_t>(words[5]);
    r.code = static_cast<std::uint32_t>(words[6]);
    r.value = words[7];
    std::memcpy(r.detail.data(), &words[8], Record::kDetailBytes);
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });
  return out;
}

}  // namespace ftc::obs
