// metrics.hpp - Process-wide metrics registry with Prometheus/JSON export.
//
// One registry snapshots the whole cluster: components either own
// first-class instruments (Counter / Gauge / Histogram, handed out by the
// registry as stable references backed by relaxed atomics) or — for the
// pre-existing stats structs (`EndpointStats`, `HvacClient::Stats`,
// `PfsFetchGuard::Stats`, SWIM agent, `ShardedCacheStore`) — register a
// *collector* callback that emits samples at export time from the same
// counters the legacy `stats_snapshot()` accessors read.  The collector
// pattern is what keeps migration free: the component's counters stay the
// single source of truth, the legacy accessors stay byte-identical thin
// views, and the hot path gains zero new writes.
//
// Label cardinality rules (enforced): at most kMaxLabels labels per
// series, and values are expected to come from small fixed sets (`node`,
// `op`, `outcome`).  Never label by path/key — a per-file series turns
// the registry into a second cache.
//
// Export is deterministic: series sort by (name, labels), so golden tests
// can compare full exporter output.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ftc::obs {

/// Label set for one series, e.g. {{"node","3"},{"op","read"}}.
/// Canonicalized (sorted by key) on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter (relaxed atomic; safe from any thread).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (relaxed atomic double; safe from any thread).
class Gauge {
 public:
  void set(double v) {
    bits_.store(to_bits(v), std::memory_order_relaxed);
  }
  void add(double delta);
  [[nodiscard]] double value() const { return from_bits(bits_.load(std::memory_order_relaxed)); }

 private:
  static std::uint64_t to_bits(double v);
  static double from_bits(std::uint64_t b);
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: cumulative `le` buckets
/// plus an implicit +Inf bucket, a count, and a sum).  Buckets are
/// relaxed atomics; observe() is wait-free.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; the +Inf bucket is
  /// implicit.  Throws std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    /// Cumulative counts per configured bound (observations <= bound),
    /// same order as upper_bounds(); the +Inf count equals `count`.
    std::vector<std::uint64_t> cumulative;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }

 private:
  std::vector<double> bounds_;
  /// Per-bucket (non-cumulative) counts; index bounds_.size() = overflow.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

class MetricsRegistry {
 public:
  /// Hard cap on labels per series (cardinality rule; see header intro).
  static constexpr std::size_t kMaxLabels = 4;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument for (name, labels), creating it on first use.
  /// References stay valid for the registry's lifetime.  Throws
  /// std::invalid_argument on a malformed name, too many labels, or a
  /// type clash with an existing series.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// For histograms, `upper_bounds` applies on first creation; later
  /// lookups return the existing instrument regardless.
  Histogram& histogram(const std::string& name, const Labels& labels,
                       std::vector<double> upper_bounds);

  /// Sink a collector writes into at export time.
  class Collection {
   public:
    void counter(const std::string& name, const Labels& labels,
                 std::uint64_t value);
    void gauge(const std::string& name, const Labels& labels, double value);
    void histogram(const std::string& name, const Labels& labels,
                   const std::vector<double>& upper_bounds,
                   const std::vector<std::uint64_t>& cumulative,
                   std::uint64_t count, double sum);

   private:
    friend class MetricsRegistry;
    struct Sample;
    explicit Collection(std::vector<Sample>& out) : out_(out) {}
    std::vector<Sample>& out_;
  };

  /// Export-time callback: reads the owning component's counters and
  /// emits them as samples.  Must be thread-safe against the component's
  /// writers (components expose atomic / mutex-guarded snapshots).
  using Collector = std::function<void(Collection&)>;
  void register_collector(Collector collector);

  /// Prometheus text exposition format (text/plain version 0.0.4):
  /// `# TYPE` lines plus one sample line per series, sorted.
  [[nodiscard]] std::string export_prometheus_text() const;

  /// The same samples as a JSON document: {"metrics":[{name,type,labels,
  /// value|buckets+count+sum}, ...]}, sorted like the Prometheus export.
  [[nodiscard]] std::string export_json() const;

 private:
  struct Instrument {
    enum class Type { kCounter, kGauge, kHistogram } type;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::unique_ptr<Instrument>> series;
  };

  Instrument& find_or_create(const std::string& name, const Labels& labels,
                             Instrument::Type type,
                             const std::vector<double>* bounds);
  void gather(std::vector<Collection::Sample>& out) const;

  mutable std::array<Stripe, kStripes> stripes_;
  mutable std::mutex collectors_mutex_;
  std::vector<Collector> collectors_;
};

}  // namespace ftc::obs
