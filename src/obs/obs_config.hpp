// obs_config.hpp - Cluster-level observability knobs.
//
// Everything defaults off: with this struct untouched, no FlightRecorder
// is created, no request is sampled, no span is recorded, and the wire
// format carries only the all-zero default TraceContext — behaviour is
// bit-for-bit with an uninstrumented build.  The MetricsRegistry itself
// is always available (collectors only cost at export time).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/status.hpp"

namespace ftc::obs {

struct ObsConfig {
  /// Master switch: create per-node FlightRecorders and record spans for
  /// sampled requests.  Off = the seed's untraced behaviour.
  bool tracing = false;
  /// Trace every Nth read_file call per client (1 = every read).
  /// 0 = recorders exist but no read is ever sampled (infrastructure-only
  /// mode, used by the overhead smoke).  Ignored when tracing is off.
  std::uint32_t sample_every = 1;
  /// FlightRecorder ring capacity per node (rounded up to a power of
  /// two).  Sized so a bench's storm window fits without wraparound.
  std::size_t recorder_capacity = 4096;

  [[nodiscard]] Status validate() const {
    if (tracing && recorder_capacity == 0) {
      return Status::invalid_argument(
          "obs.recorder_capacity must be > 0 when tracing is enabled");
    }
    return Status::ok();
  }
};

}  // namespace ftc::obs
