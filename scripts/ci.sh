#!/usr/bin/env bash
# Full CI gate: release build + the tier-1 test suite, then both sanitizer
# passes over the concurrency-relevant binaries (scripts/sanitize.sh).
#
# Tier-1 (ROADMAP.md) is the whole ctest suite — every test is labeled
# `tier1`, so `ctest -L tier1` and a bare `ctest` run the same set today;
# the label exists so future tier-2 (long-haul soak, large-scale bench
# gates) can join the tree without slowing this script down.
#
# Usage: scripts/ci.sh [build_dir]
set -euo pipefail

build_dir="${1:-build}"
source_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "=== configure + build (${build_dir})"
cmake -B "${build_dir}" -S "${source_dir}" > /dev/null
cmake --build "${build_dir}" -j

echo "=== tier-1 tests"
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j

echo "=== failover-storm smoke (bench_failstorm, reduced load)"
# Few-second smoke: exercises deadlines, admission, retry budgets, and
# the PFS singleflight end-to-end and enforces the duplicate-fetch
# criterion (protected max <= 1).  The p99 comparison needs the full
# default load to be meaningful, so require_p99=0 here; the recorded
# baseline (BENCH_failstorm.json) keeps both criteria.
"${build_dir}/bench/bench_failstorm" \
  nodes=6 files=60 pfs_us=4000 pre_ms=200 storm_ms=400 \
  require_p99=0 out="${build_dir}/BENCH_failstorm_smoke.json"

echo "=== thread sanitizer"
"${source_dir}/scripts/sanitize.sh" thread

echo "=== address sanitizer"
"${source_dir}/scripts/sanitize.sh" address

echo "CI green."
