#!/usr/bin/env bash
# Full CI gate: release build + the tier-1 test suite, then both sanitizer
# passes over the concurrency-relevant binaries (scripts/sanitize.sh).
#
# Tier-1 (ROADMAP.md) is the whole ctest suite — every test is labeled
# `tier1`, so `ctest -L tier1` and a bare `ctest` run the same set today;
# the label exists so future tier-2 (long-haul soak, large-scale bench
# gates) can join the tree without slowing this script down.
#
# Usage: scripts/ci.sh [build_dir]
set -euo pipefail

build_dir="${1:-build}"
source_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "=== configure + build (${build_dir})"
cmake -B "${build_dir}" -S "${source_dir}" > /dev/null
cmake --build "${build_dir}" -j

echo "=== tier-1 tests"
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j

echo "=== failover-storm smoke (bench_failstorm, reduced load)"
# Few-second smoke: exercises deadlines, admission, retry budgets, and
# the PFS singleflight end-to-end and enforces the duplicate-fetch
# criterion (protected max <= 1).  The p99 comparison needs the full
# default load to be meaningful, so require_p99=0 here; the recorded
# baseline (BENCH_failstorm.json) keeps both criteria.
"${build_dir}/bench/bench_failstorm" \
  nodes=6 files=60 pfs_us=4000 pre_ms=200 storm_ms=400 \
  require_p99=0 out="${build_dir}/BENCH_failstorm_smoke.json"

echo "=== skew-placement smoke (bench_skew, reduced load)"
# Few-second smoke at the canonical skew point (alpha=1.1): bounded-load
# spill + hot-file fanout against the single-owner baseline, enforcing the
# bounded-load contract — the skew-tolerant run's peak node share must not
# exceed c x mean by more than 10%.  The goodput-ratio criterion needs the
# full default load to be meaningful, so require_goodput=0 here; the
# recorded BENCH_skew.json keeps both criteria.
"${build_dir}/bench/bench_skew" \
  alphas=1.1 reads=120 prime=120 check_bound=1 require_goodput=0 \
  out="${build_dir}/BENCH_skew_smoke.json"

echo "=== observability smoke (bench_throughput obs_check)"
# Armed-but-unsampled recorders must not tax the hit-heavy hot path
# (tolerance absorbs shared-box noise; the structural budget is <1%),
# must record zero spans, and the exporters must emit the cross-layer
# series.  The bench exits non-zero on any of the three.
"${build_dir}/bench/bench_throughput" \
  obs_check=1 hit_passes=30 obs_reps=3 \
  out="${build_dir}/BENCH_throughput_obscheck.json"
# The obs_check artifact embeds the registry's raw export_json() output;
# parsing the artifact therefore validates the exporter's JSON syntax.
python3 - "${build_dir}/BENCH_throughput_obscheck.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
metrics = doc["export_sample"]["metrics"]
assert metrics, "exporter emitted no metrics"
names = {m["name"] for m in metrics}
for required in ("ftc_client_reads_total", "ftc_server_cache_hits_total",
                 "ftc_transport_received_total", "ftc_client_read_latency_us"):
    assert required in names, f"exporter missing {required}"
print(f"exporter JSON parses: {len(metrics)} series, "
      f"overhead {doc['overhead_pct']}%")
EOF

echo "=== thread sanitizer"
"${source_dir}/scripts/sanitize.sh" thread

echo "=== address sanitizer"
"${source_dir}/scripts/sanitize.sh" address

echo "CI green."
