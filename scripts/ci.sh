#!/usr/bin/env bash
# Full CI gate: release build + the tier-1 test suite, then both sanitizer
# passes over the concurrency-relevant binaries (scripts/sanitize.sh).
#
# Tier-1 (ROADMAP.md) is the whole ctest suite — every test is labeled
# `tier1`, so `ctest -L tier1` and a bare `ctest` run the same set today;
# the label exists so future tier-2 (long-haul soak, large-scale bench
# gates) can join the tree without slowing this script down.
#
# Usage: scripts/ci.sh [build_dir]
set -euo pipefail

build_dir="${1:-build}"
source_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "=== configure + build (${build_dir})"
cmake -B "${build_dir}" -S "${source_dir}" > /dev/null
cmake --build "${build_dir}" -j

echo "=== tier-1 tests"
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j

echo "=== failover-storm smoke (bench_failstorm, reduced load)"
# Few-second smoke: exercises deadlines, admission, retry budgets, and
# the PFS singleflight end-to-end and enforces the duplicate-fetch
# criterion (protected max <= 1).  The p99 comparison needs the full
# default load to be meaningful, so require_p99=0 here; the recorded
# baseline (BENCH_failstorm.json) keeps both criteria.  warm=0: the
# warm-failover phase gets its own smoke below with its own gate.
"${build_dir}/bench/bench_failstorm" \
  nodes=6 files=60 pfs_us=4000 pre_ms=200 storm_ms=400 \
  require_p99=0 warm=0 out="${build_dir}/BENCH_failstorm_smoke.json"

echo "=== warm-failover smoke (bench_failstorm warm=1, reduced load)"
# Same reduced load with the warm-standby phase on.  The exit code
# enforces the warm phase's PFS criterion — storm-window PFS reads per
# lost file <= 0.05, i.e. the ring-successor standbys (not the PFS)
# absorb the redirected reads.  Belt and suspenders, the artifact is
# checked too: the smoke must observe a PFS-free storm outright.
"${build_dir}/bench/bench_failstorm" \
  nodes=6 files=60 pfs_us=4000 pre_ms=200 storm_ms=400 \
  require_p99=0 warm=1 out="${build_dir}/BENCH_failstorm_warm_smoke.json"
python3 - "${build_dir}/BENCH_failstorm_warm_smoke.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
warm = doc["phases"]["warm"]
assert doc["warm_storm_pfs_ok"], "warm storm exceeded 0.05 PFS reads/lost file"
assert warm["storm_pfs_reads"] == 0, (
    f"warm storm touched the PFS {warm['storm_pfs_reads']} times")
print(f"warm storm PFS-free: {warm['warm']['pushes']} standby pushes, "
      f"{warm['warm']['restores']} restores, "
      f"{warm['victim_files']} files lost, 0 PFS reads")
EOF

echo "=== skew-placement smoke (bench_skew, reduced load)"
# Few-second smoke at the canonical skew point (alpha=1.1): bounded-load
# spill + hot-file fanout against the single-owner baseline, enforcing the
# bounded-load contract — the skew-tolerant run's peak node share must not
# exceed c x mean by more than 10%.  The goodput-ratio criterion needs the
# full default load to be meaningful, so require_goodput=0 here; the
# recorded BENCH_skew.json keeps both criteria.
"${build_dir}/bench/bench_skew" \
  alphas=1.1 reads=120 prime=120 check_bound=1 require_goodput=0 \
  out="${build_dir}/BENCH_skew_smoke.json"

echo "=== observability smoke (bench_throughput obs_check)"
# Armed-but-unsampled recorders must not tax the hit-heavy hot path
# (tolerance absorbs shared-box noise; the structural budget is <1%),
# must record zero spans, and the exporters must emit the cross-layer
# series.  The bench exits non-zero on any of the three.  Box-level
# throughput wander can exceed the tolerance on a bad run even though
# the structural overhead is ~0 (both modes measure the same binary),
# so the smoke gets three attempts: a real regression fails all of
# them, noise does not.
obs_ok=0
for attempt in 1 2 3; do
  if "${build_dir}/bench/bench_throughput" \
    obs_check=1 hit_passes=30 obs_reps=3 \
    out="${build_dir}/BENCH_throughput_obscheck.json"; then
    obs_ok=1
    break
  fi
  echo "obs_check attempt ${attempt} over tolerance (shared-box noise?); retrying"
done
[ "${obs_ok}" -eq 1 ]
# The obs_check artifact embeds the registry's raw export_json() output;
# parsing the artifact therefore validates the exporter's JSON syntax.
python3 - "${build_dir}/BENCH_throughput_obscheck.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
metrics = doc["export_sample"]["metrics"]
assert metrics, "exporter emitted no metrics"
names = {m["name"] for m in metrics}
for required in ("ftc_client_reads_total", "ftc_server_cache_hits_total",
                 "ftc_transport_received_total", "ftc_client_read_latency_us"):
    assert required in names, f"exporter missing {required}"
print(f"exporter JSON parses: {len(metrics)} series, "
      f"overhead {doc['overhead_pct']}%")
EOF

echo "=== epoch-ahead prefetch smoke (bench_fig5_end_to_end prefetch_only=1, reduced load)"
# Few-second smoke on the threaded cluster: cold vs epoch-ahead
# prefetched vs prefetched+mid-epoch-kill.  The exit code enforces the
# acceptance gates (epochs/hour >= 1.2x cold, steady-state epoch PFS
# reads == 0 with prefetch on, kill recovery via kPeerGet + warm
# standbys with zero PFS reads beyond warm-up).  The epochs/hour ratio
# is a wall-clock measurement, so like the obs smoke it gets three
# attempts: a real regression fails all of them, box noise does not.
pf_ok=0
for attempt in 1 2 3; do
  if "${build_dir}/bench/bench_fig5_end_to_end" \
    prefetch_only=1 pf_files=96 pf_file_kb=16 pf_epochs=3 \
    out="${build_dir}/BENCH_prefetch_smoke.json"; then
    pf_ok=1
    break
  fi
  echo "prefetch smoke attempt ${attempt} failed (shared-box noise?); retrying"
done
[ "${pf_ok}" -eq 1 ]
python3 - "${build_dir}/BENCH_prefetch_smoke.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
runs = {r["name"]: r for r in doc["scenarios"]}
warm, kill = runs["prefetched"], runs["prefetched+kill"]
assert all(n == 0 for n in warm["pfs_reads_per_epoch"][1:]), (
    f"prefetched epochs touched the PFS: {warm['pfs_reads_per_epoch']}")
assert kill["total_pfs_reads"] == 96, (
    f"kill recovery read the PFS: {kill['total_pfs_reads']} != 96 warm-up reads")
assert kill["server_peer_gets"] > 0, "kill scenario never exercised kPeerGet"
assert kill["restarts"] >= 1, "kill scenario did not restart"
print(f"prefetch smoke: {warm['epochs_per_hour']:.0f} vs "
      f"{runs['cold']['epochs_per_hour']:.0f} epochs/h cold, "
      f"{kill['server_peer_gets']} kPeerGet serves under kill, 0 extra PFS reads")
EOF

echo "=== partition-tolerance smoke (bench_partition, reduced load)"
# Few-second smoke: 8 nodes, 60/40 asymmetric split healed mid-run.  The
# exit code enforces all four partition gates — majority SLO-goodput >=
# 0.99x healthy, ZERO stale-epoch writes accepted, at most one false
# failure confirmation, post-heal convergence <= 2x a single-kill
# failover.  The artifact is checked too: the zero-stale-writes criterion
# is the split-brain safety property, so it is asserted independently of
# the bench's own gating.
"${build_dir}/bench/bench_partition" \
  nodes=8 files=24 fresh_files=8 file_kb=16 passes=80 timeout_s=20 \
  out="${build_dir}/BENCH_partition_smoke.json"
python3 - "${build_dir}/BENCH_partition_smoke.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
fencing = doc["fencing"]
assert fencing["stale_epoch_puts_accepted"] == 0, (
    f"split-brain safety violated: {fencing['stale_epoch_puts_accepted']} "
    "stale-epoch writes accepted")
part = doc["partition"]
print(f"partition smoke: availability {part['availability_ratio']:.4f}, "
      f"{fencing['fenced_writes']} writes fenced / 0 stale accepted, "
      f"{part['false_confirms']} false confirms, "
      f"heal {part['post_heal_ms']:.0f}ms vs "
      f"single-kill {doc['single_kill']['convergence_ms']:.0f}ms")
EOF

echo "=== tiered-store pressure smoke (bench_pressure, reduced load)"
# Few-second smoke over the RAM+NVMe tiered store: warm-then-scan
# hot-set survival (S3-FIFO must beat LRU by the 1.3x gate), write p99
# under watermark reclaim, and the kill + warm-restart phase (manifest
# re-serves everything, stale generation rejected, zero PFS reads).
# The p99 criterion is a wall-clock measurement, so like the obs smoke
# it gets three attempts: a real regression fails all of them.
pr_ok=0
for attempt in 1 2 3; do
  if "${build_dir}/bench/bench_pressure" \
    ram_kb=512 writes=800 wr_files=24 epochs=2 \
    out="${build_dir}/BENCH_pressure_smoke.json"; then
    pr_ok=1
    break
  fi
  echo "pressure smoke attempt ${attempt} failed (shared-box noise?); retrying"
done
[ "${pr_ok}" -eq 1 ]
python3 - "${build_dir}/BENCH_pressure_smoke.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
scan, warm = doc["scan"], doc["warm"]
assert scan["s3fifo"]["hot_set_hit_ratio"] > scan["lru"]["hot_set_hit_ratio"], (
    "S3-FIFO did not beat LRU on post-scan hot-set survival")
assert warm["restored"] == warm["held"], (
    f"warm restart dropped entries: {warm['restored']}/{warm['held']}")
assert warm["pfs_reads_on_reserve"] == 0, (
    f"warm restart touched the PFS {warm['pfs_reads_on_reserve']} times")
assert warm["rejected_stale"] == 1, "stale-generation manifest row not rejected"
print(f"pressure smoke: s3fifo keeps {scan['s3fifo']['hot_set_hit_ratio']:.2f} "
      f"of the hot set vs lru {scan['lru']['hot_set_hit_ratio']:.2f}; "
      f"warm restart {warm['restored']}/{warm['held']}, 0 PFS reads")
EOF

echo "=== thread sanitizer"
"${source_dir}/scripts/sanitize.sh" thread

echo "=== address sanitizer"
"${source_dir}/scripts/sanitize.sh" address

echo "CI green."
