#!/usr/bin/env bash
# Builds the concurrency-relevant test binaries under a sanitizer and runs
# them.  The lock-striped cache, thread pools and transport are the racy
# surface; cluster/rpc/storage tests cover all three.  cluster_test also
# carries the gray-failure stress suite (GrayFailStress): concurrent
# hedging clients racing async hedge legs and reinstatement probes against
# a flapping node and a slow node — the paths where a data race would hide.
# membership_test exercises the SWIM gossip scheduler and the epoch-swap
# publish path: background probe threads, async ping-req/verdict errands
# and reader-side ring snapshots all interleave there.
# The overload-control layer is covered too: storage_test stresses the
# singleflight leader/joiner handoff (50 open/close rounds under
# contention), rpc_test the multi-worker endpoints + admission shedding,
# and cluster_test the PFS fetch guard (breaker, slots), bounded-PFS
# contention, and the client retry-budget/hedge interplay — TSan sees
# every leader election, flight publish, and token-bucket path.
# obs_test covers the observability layer: the FlightRecorder's per-slot
# seqlock under 8 concurrent writers racing a dumping reader, the
# lock-striped MetricsRegistry under concurrent registration + export,
# and end-to-end traced reads (hedge legs and async completions record
# spans from pool threads while the client thread records the root).
# Skew-tolerant placement rides along in cluster_test and rpc_test: the
# transport's load-EWMA/in-flight accounting under multi-worker endpoints,
# and BoundedLoadSpill's four concurrent clients hammering one hotspot
# while hints, spills, and async kPut/kEvict fanout completions interleave
# with the promoter/estimator on each client's own thread.
# Warm failover (cluster_test, WarmFailover suite) adds the write-behind
# standby path: async generation-stamped kPuts whose completions touch
# the refcounted mailbox and the shared in-flight counter from pool
# threads, racing reads, kills, rejoins, and the server's generation
# ledger — the replication surface a torn stamp would corrupt.
# Epoch-ahead prefetch (cluster_test, EpochPrefetch suite) is the newest
# racy surface: bounded-depth async kPeerGet pulls whose completions CRC
# the payload on pool threads, post the bytes through the refcounted
# mailbox, and decrement the shared in-flight counter (post-then-decrement
# ordering is what drain_prefetch's exit sweep relies on), interleaved
# with kill-driven ring surgery, p2p chain hops, and the trainer's staged
# consume on the owning thread.
# Partition tolerance rides along in membership_test, rpc_test and
# cluster_test: the transport's per-link block/duplicate/reorder faults
# mutate endpoint state under the same mutex the multi-worker dispatch
# path holds; the SWIM quorum-evidence map and verdict dedup set are
# touched from probe rounds, async verdict completions and gossiped
# claims; and the fencing path (epoch check + kStaleView fast-forward
# with full-dump fallback) runs on server worker threads racing the
# membership agent's epoch swaps — the split-brain surface where a torn
# epoch read would admit a stale write.
# The tiered store (store_test, TieredStress suite) hammers the RAM+NVMe
# TieredCacheStore from 8 threads while the background reclaimer demotes
# under watermark pressure: shard locks, the cold-index mutex and the
# NVMe device index interleave with promotions (cold hit -> RAM) and the
# demote-before-cold-write window — the tier-transition surface where a
# torn byte-accounting update or a double-free of a demoted buffer would
# surface.
# Usage: scripts/sanitize.sh [thread|address] [build_dir]
set -euo pipefail

sanitizer="${1:-thread}"
build_dir="${2:-build-${sanitizer}san}"
source_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

case "${sanitizer}" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address] [build_dir]" >&2; exit 2 ;;
esac

# Bench needs google-benchmark and adds nothing to race coverage; skip it
# to keep the sanitizer build fast.
cmake -B "${build_dir}" -S "${source_dir}" \
  -DFTC_SANITIZE="${sanitizer}" \
  -DFTC_BUILD_BENCH=OFF \
  -DFTC_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "${build_dir}" -j \
  --target cluster_test rpc_test storage_test store_test membership_test obs_test

# halt_on_error makes a single report fail the run loudly.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"

status=0
for test_bin in cluster_test rpc_test storage_test store_test membership_test obs_test; do
  echo "=== ${sanitizer}-sanitizer: ${test_bin}"
  if ! "${build_dir}/tests/${test_bin}"; then
    status=1
  fi
done
exit "${status}"
