#!/usr/bin/env bash
# Regenerates every paper table/figure and ablation into results/.
# Usage: scripts/run_all_experiments.sh [build_dir] [results_dir]
set -euo pipefail

build_dir="${1:-build}"
results_dir="${2:-results}"
mkdir -p "${results_dir}"

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found — build first:" >&2
  echo "  cmake -B ${build_dir} -G Ninja && cmake --build ${build_dir}" >&2
  exit 1
fi

for bench in "${build_dir}"/bench/bench_*; do
  [[ -x "${bench}" && -f "${bench}" ]] || continue
  name="$(basename "${bench}")"
  echo "=== ${name}"
  "${bench}" > "${results_dir}/${name}.txt" 2> "${results_dir}/${name}.log"
done

echo "done; outputs in ${results_dir}/"
