// scale_simulation.cpp - Drive the discrete-event substrate directly: one
// large-scale training run with a mid-training failure, with per-epoch
// timing and I/O breakdown.  This is the API the Fig 5 / Fig 6(a) benches
// are built on; use it to explore configurations the paper didn't run.
//
//   ./scale_simulation [nodes] [mode: none|pfs|nvme]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "destim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ftc;
  using cluster::FtMode;

  const auto nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 128u;
  FtMode mode = FtMode::kHashRingRecache;
  if (argc > 2) {
    if (std::strcmp(argv[2], "none") == 0) mode = FtMode::kNone;
    if (std::strcmp(argv[2], "pfs") == 0) mode = FtMode::kPfsRedirect;
  }

  destim::ExperimentConfig config;
  config.node_count = nodes;
  config.mode = mode;
  config.file_count = 10240;
  config.file_bytes = 16ULL << 20;
  config.samples_per_file = 4;
  config.epochs = 5;
  config.pfs.access_latency = 20 * simtime::kMillisecond;
  config.pfs.access_latency_tail_mean = 30 * simtime::kMillisecond;
  config.pfs.per_client_bytes_per_second = 400.0e6;
  config.rpc_timeout = 5 * simtime::kMillisecond;
  config.elastic_restart_overhead = 300 * simtime::kMillisecond;

  cluster::PlannedFailure failure;
  failure.victim = nodes / 2;
  failure.epoch = 2;
  failure.epoch_fraction = 0.25;
  config.failures = {failure};

  std::printf("simulating %u nodes, mode=%s, one failure in epoch 2...\n\n",
              nodes, cluster::ft_mode_name(mode));
  const auto result = destim::run_experiment(config);

  if (!result.completed) {
    std::printf("job ABORTED: %s (after %s)\n", result.abort_reason.c_str(),
                simtime::to_string(result.total_time).c_str());
    return mode == FtMode::kNone ? 0 : 1;  // NoFT is expected to die
  }

  std::printf("%6s %12s %9s %10s %12s %12s %10s\n", "epoch", "duration",
              "attempts", "PFS reads", "remote hits", "local reads",
              "timeouts");
  for (const auto& epoch : result.epochs) {
    std::printf("%6u %12s %9u %10llu %12llu %12llu %10llu%s\n", epoch.epoch,
                simtime::to_string(epoch.duration).c_str(), epoch.attempts,
                static_cast<unsigned long long>(epoch.pfs_reads),
                static_cast<unsigned long long>(epoch.remote_hits),
                static_cast<unsigned long long>(epoch.local_reads),
                static_cast<unsigned long long>(epoch.timeouts),
                epoch.failure_during ? "   <- failure" : "");
  }
  std::printf(
      "\ntotal: %s (%.2f simulated minutes), %u elastic restarts, "
      "%llu PFS reads, %llu events simulated\n",
      simtime::to_string(result.total_time).c_str(), result.total_minutes(),
      result.restarts,
      static_cast<unsigned long long>(result.total_pfs_reads),
      static_cast<unsigned long long>(result.simulated_events));
  return 0;
}
