// failure_analysis.cpp - SLURM job-failure analysis (the paper's Sec III)
// as a library workflow: generate (or, in a real deployment, ingest) an
// accounting log, then compute the failure breakdown, weekly elapsed-time
// series, and node-count correlation.
//
//   ./failure_analysis [jobs]
#include <cstdio>
#include <cstdlib>

#include "common/string_util.hpp"
#include "trace/failure_analyzer.hpp"
#include "trace/log_generator.hpp"

int main(int argc, char** argv) {
  using namespace ftc;

  trace::LogGeneratorParams params;
  params.total_jobs =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 50000u;

  const auto log = trace::generate_log(params);
  const trace::FailureAnalyzer analyzer(log);

  const auto summary = analyzer.table1();
  std::printf(
      "analyzed %zu jobs (%zu cancelled jobs excluded)\n"
      "failures: %llu (%.2f%%)\n"
      "  job fail : %llu (%.2f%% of failures)\n"
      "  timeout  : %llu (%.2f%%)\n"
      "  node fail: %llu (%.2f%%)\n"
      "node-failure class (timeout + node fail): %.2f%% of failures\n\n",
      analyzer.analyzed_jobs(), analyzer.excluded_jobs(),
      static_cast<unsigned long long>(summary.total_failures),
      100.0 * summary.failure_ratio(),
      static_cast<unsigned long long>(summary.job_fail),
      100.0 * summary.share_of_failures(summary.job_fail),
      static_cast<unsigned long long>(summary.timeout),
      100.0 * summary.share_of_failures(summary.timeout),
      static_cast<unsigned long long>(summary.node_fail),
      100.0 * summary.share_of_failures(summary.node_fail),
      100.0 * summary.node_failure_class_share());

  std::printf("mean elapsed time before failure: %.1f minutes\n\n",
              analyzer.overall_failure_elapsed_mean());

  std::printf("failure-type mix by allocation size:\n");
  for (const auto& row :
       analyzer.by_node_count(trace::default_node_count_edges())) {
    std::printf("  %6.0f-%-6.0f nodes: %5llu failures, node-fail %5.2f%%, "
                "timeout %5.2f%%\n",
                row.bucket_low, row.bucket_high,
                static_cast<unsigned long long>(row.failures),
                100.0 * row.node_fail_share, 100.0 * row.timeout_share);
  }
  std::printf(
      "\nreading guide: hardware (node-fail) share climbs with allocation\n"
      "size — the motivation for fault-tolerant caching at scale.\n");
  return 0;
}
