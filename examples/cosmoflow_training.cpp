// cosmoflow_training.cpp - CosmoFlow-like elastic training over the
// threaded cluster, comparing the three fault-tolerance modes under the
// same two injected failures.
//
// Mirrors the paper's methodology end-to-end (epoch shuffling + sharding,
// Horovod-elastic rollback on failure, SLURM-drain-style kills) and prints
// the per-epoch PFS traffic that explains why hash-ring recaching wins:
// FT w/ PFS keeps paying for lost files every epoch, FT w/ NVMe pays once.
//
//   ./cosmoflow_training [epochs] [files]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "dl/threaded_trainer.hpp"

namespace {

void run_mode(ftc::cluster::FtMode mode, std::uint32_t epochs,
              std::uint32_t files) {
  using namespace ftc;
  using namespace std::chrono_literals;

  cluster::ClusterConfig config;
  config.node_count = 4;
  config.client.mode = mode;
  config.client.rpc_timeout = 50ms;
  config.client.timeout_limit = 2;
  config.server.async_data_mover = false;
  cluster::Cluster cluster(config);
  const auto paths = cluster.stage_dataset(files, /*bytes=*/512);

  dl::ThreadedTrainingConfig training;
  training.epochs = epochs;
  // Two failures: node 2 early in epoch 1, node 0 in epoch 3.
  training.injections.push_back({1, 4, 2});
  if (epochs > 3) training.injections.push_back({3, 2, 0});

  const auto result =
      dl::run_threaded_training(cluster, paths, /*expected_bytes=*/512,
                                training);

  std::printf("%-11s | completed=%s restarts=%u files_read=%llu",
              cluster::ft_mode_name(mode), result.completed ? "yes" : "NO ",
              result.restarts,
              static_cast<unsigned long long>(result.files_read));
  if (!result.completed) {
    std::printf(" abort: %s\n", result.abort_reason.c_str());
    return;
  }
  std::printf(" | PFS reads/epoch:");
  for (std::uint64_t reads : result.pfs_reads_per_epoch) {
    std::printf(" %llu", static_cast<unsigned long long>(reads));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto epochs =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 5u;
  const auto files =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 48u;

  std::printf(
      "CosmoFlow-like elastic training: 4 nodes, %u epochs, %u files,\n"
      "failures: node 2 in epoch 1, node 0 in epoch 3\n\n",
      epochs, files);
  run_mode(ftc::cluster::FtMode::kNone, epochs, files);
  run_mode(ftc::cluster::FtMode::kPfsRedirect, epochs, files);
  run_mode(ftc::cluster::FtMode::kHashRingRecache, epochs, files);
  std::printf(
      "\nreading guide: NoFT dies at the first post-failure read; FT w/ PFS\n"
      "shows nonzero PFS reads in EVERY post-failure epoch; FT w/ NVMe\n"
      "refetches lost files once and returns to zero.\n");
  return 0;
}
