// load_balance_explorer.cpp - Interactive exploration of the virtual-node
// trade-off (the paper's Fig 6(b) experiment as a library call).
//
//   ./load_balance_explorer [nodes] [files] [trials] [vnode,vnode,...]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.hpp"
#include "ring/load_distribution.hpp"

int main(int argc, char** argv) {
  using namespace ftc;

  ring::LoadDistributionParams params;
  params.physical_nodes =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256u;
  params.file_count =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 65536u;
  params.trials =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 200u;

  std::vector<std::uint32_t> vnode_counts = {1, 10, 100, 1000};
  if (argc > 4) {
    vnode_counts.clear();
    for (const std::string& part : split(argv[4], ',')) {
      const int v = std::atoi(part.c_str());
      if (v > 0) vnode_counts.push_back(static_cast<std::uint32_t>(v));
    }
  }

  std::printf(
      "load redistribution after one node failure\n"
      "%u physical nodes, %llu files, %u trials per point\n\n"
      "%10s %18s %18s %14s %12s\n",
      params.physical_nodes,
      static_cast<unsigned long long>(params.file_count), params.trials,
      "vnodes", "receiver nodes", "files/receiver", "worst node", "fairness");

  for (const std::uint32_t vnodes : vnode_counts) {
    ring::LoadDistributionParams point = params;
    point.vnodes_per_node = vnodes;
    const auto result = ring::run_load_distribution(point);
    std::printf("%10u %11.1f +-%4.1f %11.1f +-%4.1f %14.1f %12.3f\n", vnodes,
                result.receiver_nodes.mean(), result.receiver_nodes.stddev(),
                result.files_per_receiver.mean(),
                result.files_per_receiver.stddev(),
                result.max_files_one_receiver.mean(),
                result.receiver_fairness.mean());
  }
  std::printf(
      "\nreading guide: more virtual nodes spread a failed node's files over\n"
      "more receivers (left) and shrink the worst receiver's burden (right),\n"
      "at the cost of a larger ring; the paper's production choice is 100.\n");
  return 0;
}
