// ttl_tuning.cpp - Measurement-driven timeout selection (Sec IV-A).
//
// The paper's guidance: TIMEOUT_SECONDS "only needs to be greater than the
// longest observed latency".  This example measures real request latencies
// against a live cluster — including a transiently slow node — and shows
// what TTL the rule picks, then demonstrates both failure modes of a badly
// chosen TTL: too tight flags a healthy-but-slow node; generous-but-sane
// detects a real failure with bounded delay.
//
//   ./ttl_tuning
#include <chrono>
#include <cstdio>

#include "cluster/cluster.hpp"

int main() {
  using namespace ftc;
  using namespace std::chrono_literals;

  cluster::ClusterConfig config;
  config.node_count = 4;
  config.client.mode = cluster::FtMode::kHashRingRecache;
  config.client.rpc_timeout = 200ms;  // deliberately generous to start
  config.client.timeout_limit = 2;
  config.server.async_data_mover = false;
  cluster::Cluster cluster(config);
  const auto paths = cluster.stage_dataset(48, 512);
  cluster.warm_caches(paths);

  // 1. Measure: one epoch of reads gives the latency window.
  for (const auto& path : paths) (void)cluster.client(0).read_file(path);
  const auto& latency = cluster.client(0).latency();
  std::printf(
      "observed request latencies over %llu reads:\n"
      "  p50 %.0f us | p99 %.0f us | max %.0f us\n",
      static_cast<unsigned long long>(latency.total_recorded()),
      latency.percentile(50), latency.percentile(99), latency.max());

  // 2. The rule: TTL = max observed x safety margin.
  const auto ttl = cluster.client(0).recommended_timeout(/*margin=*/2.0);
  std::printf("recommended TTL (max x 2): %lld ms\n\n",
              static_cast<long long>(ttl.count()));

  // 3. A transiently slow node under a too-tight deadline: timeouts pile
  //    up, but the counter threshold plus the eventual success keep the
  //    node unflagged as long as the blip stays short.
  cluster.transport().set_extra_latency(2, 30ms);
  std::printf("node 2 now +30 ms slow; reading with the recommended TTL...\n");
  for (const auto& path : paths) {
    if (!cluster.client(0).read_file(path).is_ok()) {
      std::printf("unexpected failure reading %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("  node 2 flagged: %s (slow != dead when TTL is sane)\n",
              cluster.client(0).node_failed(2) ? "YES (bad)" : "no (good)");
  cluster.transport().set_extra_latency(2, 0ms);

  // 4. A real crash is still detected within TTL x limit.
  cluster.fail_node(1);
  std::printf("\nnode 1 drained; next reads detect it...\n");
  for (const auto& path : paths) (void)cluster.client(0).read_file(path);
  std::printf("  node 1 flagged: %s; timeouts paid: %llu\n",
              cluster.client(0).node_failed(1) ? "yes" : "NO (bad)",
              static_cast<unsigned long long>(
                  cluster.client(0).stats_snapshot().timeouts));
  return cluster.client(0).node_failed(1) &&
                 !cluster.client(0).node_failed(2)
             ? 0
             : 1;
}
