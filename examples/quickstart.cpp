// quickstart.cpp - Five-minute tour of FT-Cache.
//
// Builds a 4-node in-process cluster (each node runs an HVAC server and a
// client), stages a small dataset on the simulated PFS, reads it through
// the cache layer, kills a node, and shows the hash-ring recaching keep
// every file readable with exactly one extra PFS access per lost file.
//
//   ./quickstart
#include <chrono>
#include <cstdio>

#include "cluster/cluster.hpp"

int main() {
  using namespace ftc;
  using namespace std::chrono_literals;

  // 1. Configure a 4-node cluster with hash-ring fault tolerance.
  cluster::ClusterConfig config;
  config.node_count = 4;
  config.client.mode = cluster::FtMode::kHashRingRecache;
  config.client.rpc_timeout = 50ms;   // TIMEOUT_SECONDS
  config.client.timeout_limit = 2;    // TIMEOUT_LIMIT
  config.client.vnodes_per_node = 100;
  config.server.async_data_mover = false;  // deterministic demo
  cluster::Cluster cluster(config);

  // 2. Stage 32 files on the (simulated) parallel file system.
  const auto paths = cluster.stage_dataset(/*count=*/32, /*bytes=*/256);
  std::printf("staged %zu files on the PFS\n", paths.size());

  // 3. First pass: every read misses the cache, so each file is fetched
  //    from the PFS once and cached on its hash-ring owner's NVMe.
  for (const auto& path : paths) {
    auto contents = cluster.client(0).read_file(path);
    if (!contents.is_ok()) {
      std::printf("read failed: %s\n", contents.status().to_string().c_str());
      return 1;
    }
  }
  std::printf("epoch 1: PFS reads = %llu (one per file)\n",
              static_cast<unsigned long long>(cluster.pfs().read_count()));

  // 4. Second pass: everything is served from NVMe caches.
  for (const auto& path : paths) (void)cluster.client(1).read_file(path);
  std::printf("epoch 2: PFS reads = %llu (cache does its job)\n",
              static_cast<unsigned long long>(cluster.pfs().read_count()));

  // 5. Kill node 2 (crash-stop, like a SLURM drain).  Its cached files are
  //    gone; the next reader times out, flags it, removes it from the
  //    ring, and the clockwise successor recaches each lost file once.
  cluster.fail_node(2);
  std::printf("\n*** node 2 drained ***\n");
  for (const auto& path : paths) {
    auto contents = cluster.client(0).read_file(path);
    if (!contents.is_ok()) {
      std::printf("read failed after failure: %s\n",
                  contents.status().to_string().c_str());
      return 1;
    }
  }
  const auto& stats = cluster.client(0).stats_snapshot();
  std::printf(
      "epoch 3: all %zu files still readable\n"
      "         timeouts observed: %llu, ring updates: %llu\n"
      "         PFS reads now %llu (only the lost files were re-fetched)\n",
      paths.size(), static_cast<unsigned long long>(stats.timeouts),
      static_cast<unsigned long long>(stats.ring_updates),
      static_cast<unsigned long long>(cluster.pfs().read_count()));

  // 6. Fourth pass: the recached files are NVMe-resident again.
  const auto pfs_before = cluster.pfs().read_count();
  for (const auto& path : paths) (void)cluster.client(0).read_file(path);
  std::printf("epoch 4: PFS reads unchanged (%llu) — recaching paid off\n",
              static_cast<unsigned long long>(cluster.pfs().read_count()));
  return cluster.pfs().read_count() == pfs_before ? 0 : 1;
}
